// Package appendbv implements the append-only compressed bitvector of
// paper §4.1 (Theorem 4.5): Access, Rank and Select in constant time and
// Append in amortized constant time, in nH₀(β) + o(n) bits.
//
// Layout, following the theorem's proof:
//
//   - the stream is split into fixed-size segments of L bits; each full
//     segment is sealed into an immutable RRR dictionary (the Fˆᵢ of the
//     proof);
//   - the most recent, incomplete segment is the small mutable bitvector
//     B′ of Lemma 4.6, kept uncompressed with rank samples, so Append is
//     a word write plus counter updates;
//   - the partial sums sˆᵢ over segment popcounts are append-only, so a
//     plain prefix array (grown only at seal time) plays the role of the
//     fusion-tree/partial-sum bitvectors: O(1) Rank addressing and
//     O(log #segments) Select (see DESIGN.md, substitutions).
//
// Init(b, n) — required by the Wavelet Trie when a node split materializes
// a constant bitvector (Remark 4.2) — is implemented exactly as §4
// suggests for the append-only case: "adding a left offset in each
// bitvector", i.e. a virtual run of n copies of b stored in O(log n) bits.
package appendbv

import (
	"fmt"
	"math/bits"

	"repro/internal/rrr"
)

// SegmentBits is the sealed-segment size L. With L = 2^14 the directory
// overhead is 128/L ≈ 0.8% and seal cost stays micro-scale, matching the
// o(n) redundancy target of Theorem 4.5.
const SegmentBits = 1 << 14

const tailSuperWords = 8 // rank-sample spacing in the mutable tail

// Vector is an append-only bitvector. The zero value is an empty vector
// ready for use. Not safe for concurrent mutation.
type Vector struct {
	initBit byte // value of the virtual leading run
	initLen int  // length of the virtual leading run

	segs     []*rrr.Vector // sealed segments, SegmentBits each
	cumOnes  []int         // cumOnes[i] = ones in segs[:i]; len = len(segs)+1
	tail     []uint64      // mutable final segment
	tailLen  int
	tailOnes int
	// tailSuper[k] = ones in tail words [0, k*tailSuperWords); append-only.
	tailSuper []int32
}

// New returns an empty append-only bitvector.
func New() *Vector {
	return &Vector{cumOnes: []int{0}, tailSuper: []int32{0}}
}

// NewInit returns a bitvector initialized to n copies of bit b, the
// Init(b, n) operation of §4. It costs O(1) words regardless of n.
func NewInit(b byte, n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("appendbv: NewInit: negative length %d", n))
	}
	v := New()
	v.initBit = b & 1
	v.initLen = n
	return v
}

// Len returns the number of bits.
func (v *Vector) Len() int {
	return v.initLen + len(v.segs)*SegmentBits + v.tailLen
}

// Ones returns the number of 1 bits.
func (v *Vector) Ones() int {
	ones := v.cumOnes[len(v.segs)] + v.tailOnes
	if v.initBit == 1 {
		ones += v.initLen
	}
	return ones
}

// Zeros returns the number of 0 bits.
func (v *Vector) Zeros() int { return v.Len() - v.Ones() }

// Append appends one bit in amortized constant time.
func (v *Vector) Append(bit byte) {
	if v.tailLen&63 == 0 {
		if v.tailLen>>6%tailSuperWords == 0 && v.tailLen > 0 {
			v.tailSuper = append(v.tailSuper, int32(v.tailOnes))
		}
		v.tail = append(v.tail, 0)
	}
	if bit != 0 {
		v.tail[v.tailLen>>6] |= 1 << (uint(v.tailLen) & 63)
		v.tailOnes++
	}
	v.tailLen++
	if v.tailLen == SegmentBits {
		v.seal()
	}
}

// AppendRun appends cnt copies of bit.
func (v *Vector) AppendRun(bit byte, cnt int) {
	for i := 0; i < cnt; i++ {
		v.Append(bit)
	}
}

// seal compresses the full tail into an RRR segment.
func (v *Vector) seal() {
	seg := rrr.FromWords(v.tail, SegmentBits)
	v.segs = append(v.segs, seg)
	v.cumOnes = append(v.cumOnes, v.cumOnes[len(v.cumOnes)-1]+seg.Ones())
	v.tail = v.tail[:0]
	v.tailLen = 0
	v.tailOnes = 0
	v.tailSuper = v.tailSuper[:1]
}

// Access returns bit pos.
func (v *Vector) Access(pos int) byte {
	if pos < 0 || pos >= v.Len() {
		panic(fmt.Sprintf("appendbv: Access(%d) out of range [0,%d)", pos, v.Len()))
	}
	if pos < v.initLen {
		return v.initBit
	}
	pos -= v.initLen
	if seg := pos / SegmentBits; seg < len(v.segs) {
		return v.segs[seg].Access(pos % SegmentBits)
	}
	pos -= len(v.segs) * SegmentBits
	return byte(v.tail[pos>>6]>>(uint(pos)&63)) & 1
}

// Rank1 returns the number of 1 bits in [0, pos). pos may equal Len().
func (v *Vector) Rank1(pos int) int {
	if pos < 0 || pos > v.Len() {
		panic(fmt.Sprintf("appendbv: Rank1(%d) out of range [0,%d]", pos, v.Len()))
	}
	r := 0
	if v.initBit == 1 {
		if pos <= v.initLen {
			return pos
		}
		r = v.initLen
	} else if pos <= v.initLen {
		return 0
	}
	pos -= v.initLen
	seg := pos / SegmentBits
	if seg >= len(v.segs) {
		// Position lands in the tail.
		r += v.cumOnes[len(v.segs)]
		return r + v.tailRank1(pos-len(v.segs)*SegmentBits)
	}
	return r + v.cumOnes[seg] + v.segs[seg].Rank1(pos%SegmentBits)
}

// tailRank1 counts ones in tail bits [0, pos).
func (v *Vector) tailRank1(pos int) int {
	if pos == v.tailLen {
		return v.tailOnes
	}
	wi := pos >> 6
	super := wi / tailSuperWords
	r := int(v.tailSuper[super])
	for i := super * tailSuperWords; i < wi; i++ {
		r += bits.OnesCount64(v.tail[i])
	}
	if off := uint(pos) & 63; off != 0 {
		r += bits.OnesCount64(v.tail[wi] & (1<<off - 1))
	}
	return r
}

// Rank0 returns the number of 0 bits in [0, pos).
func (v *Vector) Rank0(pos int) int { return pos - v.Rank1(pos) }

// Rank returns the number of occurrences of bit b in [0, pos).
func (v *Vector) Rank(b byte, pos int) int {
	if b == 0 {
		return v.Rank0(pos)
	}
	return v.Rank1(pos)
}

// Select1 returns the position of the idx-th (0-based) 1 bit.
func (v *Vector) Select1(idx int) int {
	ones := v.Ones()
	if idx < 0 || idx >= ones {
		panic(fmt.Sprintf("appendbv: Select1(%d) out of range [0,%d)", idx, ones))
	}
	if v.initBit == 1 {
		if idx < v.initLen {
			return idx
		}
		idx -= v.initLen
	}
	// Binary search sealed segments by cumulative ones.
	lo, hi := 0, len(v.segs)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if v.cumOnes[mid] <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo < len(v.segs) && v.cumOnes[lo+1] > idx {
		return v.initLen + lo*SegmentBits + v.segs[lo].Select1(idx-v.cumOnes[lo])
	}
	// In the tail.
	idx -= v.cumOnes[len(v.segs)]
	return v.initLen + len(v.segs)*SegmentBits + v.tailSelect(1, idx)
}

// Select0 returns the position of the idx-th (0-based) 0 bit.
func (v *Vector) Select0(idx int) int {
	zeros := v.Zeros()
	if idx < 0 || idx >= zeros {
		panic(fmt.Sprintf("appendbv: Select0(%d) out of range [0,%d)", idx, zeros))
	}
	if v.initBit == 0 {
		if idx < v.initLen {
			return idx
		}
		idx -= v.initLen
	}
	segZeros := func(i int) int { return i*SegmentBits - v.cumOnes[i] }
	lo, hi := 0, len(v.segs)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if segZeros(mid) <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo < len(v.segs) && segZeros(lo+1) > idx {
		return v.initLen + lo*SegmentBits + v.segs[lo].Select0(idx-segZeros(lo))
	}
	idx -= segZeros(len(v.segs))
	return v.initLen + len(v.segs)*SegmentBits + v.tailSelect(0, idx)
}

// Select returns the position of the idx-th occurrence of bit b.
func (v *Vector) Select(b byte, idx int) int {
	if b == 0 {
		return v.Select0(idx)
	}
	return v.Select1(idx)
}

// tailSelect finds the idx-th occurrence of bit b within the tail.
func (v *Vector) tailSelect(b byte, idx int) int {
	rem := idx
	nw := (v.tailLen + 63) >> 6
	for wi := 0; wi < nw; wi++ {
		w := v.tail[wi]
		if b == 0 {
			w = ^w
			if (wi+1)*64 > v.tailLen {
				w &= 1<<(uint(v.tailLen)&63) - 1
			}
		}
		c := bits.OnesCount64(w)
		if rem < c {
			return wi*64 + select64(w, rem)
		}
		rem -= c
	}
	panic("appendbv: tailSelect: index beyond tail")
}

// SizeBits returns the size of the succinct encoding in bits: sealed RRR
// segments, the raw tail, the partial-sum directory and the O(log n) init
// run descriptor.
func (v *Vector) SizeBits() int {
	s := 64 + 8 // init run descriptor
	for _, seg := range v.segs {
		s += seg.SizeBits()
	}
	s += len(v.tail)*64 + len(v.tailSuper)*32
	s += len(v.cumOnes) * 64
	return s
}

// InitRun returns the Init(b,n) run this vector was created with.
func (v *Vector) InitRun() (bit byte, n int) { return v.initBit, v.initLen }

// Iter returns a sequential bit cursor starting at pos, with O(1)
// amortized Next (used by the §5 sequential-access algorithm).
func (v *Vector) Iter(pos int) *Iter {
	if pos < 0 || pos > v.Len() {
		panic(fmt.Sprintf("appendbv: Iter(%d) out of range [0,%d]", pos, v.Len()))
	}
	it := &Iter{v: v, pos: pos}
	it.sync()
	return it
}

// Iter is a sequential cursor over a Vector. The vector must not be
// appended to while an iterator is in use.
type Iter struct {
	v   *Vector
	pos int
	seg *rrr.Iter // non-nil while inside a sealed segment
}

func (it *Iter) sync() {
	it.seg = nil
	p := it.pos - it.v.initLen
	if p >= 0 && p < len(it.v.segs)*SegmentBits {
		it.seg = it.v.segs[p/SegmentBits].Iter(p % SegmentBits)
	}
}

// Pos returns the position of the bit Next will return.
func (it *Iter) Pos() int { return it.pos }

// Valid reports whether Next may be called.
func (it *Iter) Valid() bool { return it.pos < it.v.Len() }

// Next returns the current bit and advances.
func (it *Iter) Next() byte {
	if !it.Valid() {
		panic("appendbv: Iter.Next past end")
	}
	var b byte
	switch {
	case it.pos < it.v.initLen:
		b = it.v.initBit
	case it.seg != nil:
		b = it.seg.Next()
	default:
		p := it.pos - it.v.initLen - len(it.v.segs)*SegmentBits
		b = byte(it.v.tail[p>>6]>>(uint(p)&63)) & 1
	}
	it.pos++
	if it.seg != nil && !it.seg.Valid() {
		it.sync()
	} else if it.pos == it.v.initLen {
		it.sync()
	}
	return b
}

// select64 returns the position of the k-th (0-based) set bit of w.
func select64(w uint64, k int) int {
	for i := 0; i < 8; i++ {
		bb := w >> (8 * i) & 0xff
		c := bits.OnesCount8(uint8(bb))
		if k < c {
			for j := 0; j < 8; j++ {
				if bb>>j&1 == 1 {
					if k == 0 {
						return 8*i + j
					}
					k--
				}
			}
		}
		k -= c
	}
	panic("appendbv: select64: k out of range")
}
