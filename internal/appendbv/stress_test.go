package appendbv

import (
	"math/rand"
	"testing"
)

// TestManySealsIterAndSelect drives the vector through many segment
// seals and checks the cross-segment paths of Select and Iter, which the
// smaller tests only brush.
func TestManySealsIterAndSelect(t *testing.T) {
	r := rand.New(rand.NewSource(200))
	v := New()
	n := 5*SegmentBits + SegmentBits/3
	bits := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		b := byte(0)
		// Vary density per segment to vary per-segment ones.
		seg := i / SegmentBits
		if r.Intn(10) < 2+seg {
			b = 1
		}
		v.Append(b)
		bits = append(bits, b)
	}
	// Cross-check Select1 against a linear index of ones.
	var onesAt []int
	for i, b := range bits {
		if b == 1 {
			onesAt = append(onesAt, i)
		}
	}
	if v.Ones() != len(onesAt) {
		t.Fatalf("Ones=%d want %d", v.Ones(), len(onesAt))
	}
	for idx := 0; idx < len(onesAt); idx += 137 {
		if got := v.Select1(idx); got != onesAt[idx] {
			t.Fatalf("Select1(%d)=%d want %d", idx, got, onesAt[idx])
		}
	}
	// Full iteration across all seals.
	it := v.Iter(0)
	for i := 0; i < n; i++ {
		if it.Next() != bits[i] {
			t.Fatalf("iter bit %d", i)
		}
	}
	// Rank exactly at each seal boundary.
	for seg := 0; seg <= 5; seg++ {
		pos := seg * SegmentBits
		want := 0
		for _, b := range bits[:pos] {
			want += int(b)
		}
		if v.Rank1(pos) != want {
			t.Fatalf("Rank1 at seal %d", seg)
		}
	}
}

// TestInitPlusSealsSpace: a long Init run plus several sealed segments
// keeps the O(log n) init accounting and compresses the appended part.
func TestInitPlusSealsSpace(t *testing.T) {
	v := NewInit(0, 1<<28)
	for i := 0; i < 2*SegmentBits; i++ {
		v.Append(0) // all zeros: maximally compressible
	}
	if v.Len() != 1<<28+2*SegmentBits {
		t.Fatal("Len")
	}
	// Total size must be tiny: init descriptor + 2 compressed segments.
	if v.SizeBits() > 8*SegmentBits {
		t.Fatalf("SizeBits=%d for an all-zeros vector", v.SizeBits())
	}
	if v.Rank0(1<<28+100) != 1<<28+100 {
		t.Fatal("rank over init boundary")
	}
	if v.Select0(1<<28+5) != 1<<28+5 {
		t.Fatal("select over init boundary")
	}
}
