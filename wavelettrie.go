package wavelettrie

import (
	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/succinct"
)

// Distinct is one distinct string found by a range query, with its number
// of occurrences inside the queried window.
type Distinct struct {
	Value string
	Count int
}

// queries is the shared byte-string query surface; it adapts the
// bit-level core API through the prefix-free binarization of
// internal/bitstr, so user strings may contain arbitrary bytes.
type queries struct {
	w interface {
		Len() int
		AlphabetSize() int
		Height() int
		AvgHeight() float64
		TotalBitvectorBits() int
		LabelBits() int
		AccessBits(int) bitstr.BitString
		RankBits(bitstr.BitString, int) int
		SelectBits(bitstr.BitString, int) (int, bool)
		RankPrefixBits(bitstr.BitString, int) int
		SelectPrefixBits(bitstr.BitString, int) (int, bool)
		CountBits(bitstr.BitString) int
		CountPrefixBits(bitstr.BitString) int
		EnumerateBits(int, int, func(int, bitstr.BitString) bool)
		DistinctInRange(int, int) []core.DistinctResult
		RangeMajority(int, int) (bitstr.BitString, bool)
		RangeThreshold(int, int, int) []core.DistinctResult
		TopKInRange(int, int, int) []core.DistinctResult
		VisitBranches(int, int, func(bitstr.BitString, int, bool) bool)
	}
}

// Len returns the number of elements in the sequence.
func (q *queries) Len() int { return q.w.Len() }

// AlphabetSize returns |Sset|, the number of distinct strings currently
// stored.
func (q *queries) AlphabetSize() int { return q.w.AlphabetSize() }

// Height returns the maximum trie depth h (internal nodes on the longest
// root-to-leaf path).
func (q *queries) Height() int { return q.w.Height() }

// AvgHeight returns h̃, the average per-element trie depth
// (Definition 3.4) — the quantity the o(h̃n) redundancy bounds refer to.
func (q *queries) AvgHeight() float64 { return q.w.AvgHeight() }

// Access returns the string at position pos. It panics if pos is out of
// range, like a slice access.
func (q *queries) Access(pos int) string {
	s, err := bitstr.DecodeString(q.w.AccessBits(pos))
	if err != nil {
		panic("wavelettrie: internal corruption: " + err.Error())
	}
	return s
}

// Rank counts occurrences of s in positions [0, pos); pos may equal
// Len(). Strings never inserted have rank 0.
func (q *queries) Rank(s string, pos int) int {
	return q.w.RankBits(bitstr.EncodeString(s), pos)
}

// Count returns the total number of occurrences of s.
func (q *queries) Count(s string) int { return q.w.CountBits(bitstr.EncodeString(s)) }

// Select returns the position of the idx-th (0-based) occurrence of s,
// with ok=false when s occurs fewer than idx+1 times.
func (q *queries) Select(s string, idx int) (pos int, ok bool) {
	return q.w.SelectBits(bitstr.EncodeString(s), idx)
}

// RankPrefix counts elements in [0, pos) having byte prefix p.
func (q *queries) RankPrefix(p string, pos int) int {
	return q.w.RankPrefixBits(bitstr.EncodePrefixString(p), pos)
}

// CountPrefix returns the total number of elements with byte prefix p.
func (q *queries) CountPrefix(p string) int {
	return q.w.CountPrefixBits(bitstr.EncodePrefixString(p))
}

// SelectPrefix returns the position of the idx-th (0-based) element with
// byte prefix p, with ok=false when there are not that many.
func (q *queries) SelectPrefix(p string, idx int) (pos int, ok bool) {
	return q.w.SelectPrefixBits(bitstr.EncodePrefixString(p), idx)
}

// Enumerate streams the elements of positions [l, r) in order — far
// cheaper than repeated Access (one Rank per trie node for the whole
// range instead of per element). Return false from fn to stop early.
func (q *queries) Enumerate(l, r int, fn func(pos int, s string) bool) {
	q.w.EnumerateBits(l, r, func(pos int, bs bitstr.BitString) bool {
		s, err := bitstr.DecodeString(bs)
		if err != nil {
			panic("wavelettrie: internal corruption: " + err.Error())
		}
		return fn(pos, s)
	})
}

// Slice returns the elements of positions [l, r) as a fresh slice.
func (q *queries) Slice(l, r int) []string {
	out := make([]string, 0, r-l)
	q.Enumerate(l, r, func(_ int, s string) bool {
		out = append(out, s)
		return true
	})
	return out
}

// DistinctInRange returns the distinct strings occurring in positions
// [l, r) with their in-range counts, in lexicographic order. Cost depends
// only on the distinct values, not on r-l.
func (q *queries) DistinctInRange(l, r int) []Distinct {
	return decodeDistinct(q.w.DistinctInRange(l, r))
}

// RangeMajority returns the string occurring more than (r-l)/2 times in
// [l, r), if one exists.
func (q *queries) RangeMajority(l, r int) (string, bool) {
	bs, ok := q.w.RangeMajority(l, r)
	if !ok {
		return "", false
	}
	s, err := bitstr.DecodeString(bs)
	if err != nil {
		panic("wavelettrie: internal corruption: " + err.Error())
	}
	return s, true
}

// RangeThreshold returns every string occurring at least t times in
// [l, r), with counts, pruning the trie by branch counts (§5).
func (q *queries) RangeThreshold(l, r, t int) []Distinct {
	return decodeDistinct(q.w.RangeThreshold(l, r, t))
}

// TopK returns the k most frequent strings in [l, r) with counts, most
// frequent first (ties lexicographic).
func (q *queries) TopK(l, r, k int) []Distinct {
	return decodeDistinct(q.w.TopKInRange(l, r, k))
}

// DistinctPrefixes groups the elements of positions [l, r) by their first
// prefixLen bytes, returning each group's prefix and count in
// lexicographic order. Strings shorter than prefixLen form their own
// groups under their full value. The traversal stops as soon as a branch
// determines its group — the §5 "enumerate the distinct prefixes" pattern
// (e.g. distinct hostnames in a time window) — so the cost depends on the
// number of groups, not on r-l or the full string lengths.
func (q *queries) DistinctPrefixes(l, r, prefixLen int) []Distinct {
	if prefixLen < 0 {
		panic("wavelettrie: DistinctPrefixes: negative prefix length")
	}
	var out []Distinct
	q.w.VisitBranches(l, r, func(p bitstr.BitString, count int, isLeaf bool) bool {
		prefix, complete := decodePartial(p)
		switch {
		case complete:
			key := prefix
			if len(key) > prefixLen {
				key = key[:prefixLen]
			}
			out = append(out, Distinct{Value: string(key), Count: count})
			return false
		case len(prefix) >= prefixLen:
			out = append(out, Distinct{Value: string(prefix[:prefixLen]), Count: count})
			return false
		default:
			return true
		}
	})
	// A complete short string and the deeper branches extending it decode
	// to the same group key and are adjacent in lexicographic order; fuse.
	merged := out[:0]
	for _, d := range out {
		if k := len(merged); k > 0 && merged[k-1].Value == d.Value {
			merged[k-1].Count += d.Count
		} else {
			merged = append(merged, d)
		}
	}
	return merged
}

// decodePartial decodes as many whole bytes as the bit prefix determines,
// reporting whether the terminator was reached (the string is complete).
func decodePartial(p bitstr.BitString) ([]byte, bool) {
	var out []byte
	i := 0
	for i < p.Len() {
		if p.Bit(i) == 0 {
			return out, true
		}
		if i+9 > p.Len() {
			return out, false
		}
		var c byte
		for k := 1; k <= 8; k++ {
			c = c<<1 | p.Bit(i+k)
		}
		out = append(out, c)
		i += 9
	}
	return out, false
}

func decodeDistinct(in []core.DistinctResult) []Distinct {
	out := make([]Distinct, len(in))
	for i, d := range in {
		s, err := bitstr.DecodeString(d.Value)
		if err != nil {
			panic("wavelettrie: internal corruption: " + err.Error())
		}
		out[i] = Distinct{Value: s, Count: d.Count}
	}
	return out
}

// Static is the immutable Wavelet Trie (paper §3, Theorem 3.7): queries
// in O(|s|+h_s) time, space LT(Sset) + nH₀(S) + o(h̃n) bits.
type Static struct {
	queries
	st     *core.Static
	frozen *succinct.Trie // lazily built §3 succinct encoding
}

// NewStatic builds a Static Wavelet Trie over seq.
func NewStatic(seq []string) *Static {
	enc := make([]bitstr.BitString, len(seq))
	for i, s := range seq {
		enc[i] = bitstr.EncodeString(s)
	}
	st := core.NewStaticFromBits(enc)
	return &Static{queries: queries{w: st}, st: st}
}

// SizeBits returns the measured in-memory footprint in bits of the
// pointer-based (fast-navigation) representation.
func (s *Static) SizeBits() int { return s.st.SizeBits() }

// SuccinctSizeBits returns the measured size of the §3 fully-succinct
// encoding — DFUDS tree, concatenated delimited labels and one
// concatenated RRR bitvector — built on first call and cached.
func (s *Static) SuccinctSizeBits() int { return s.freeze().SizeBits() }

// SuccinctComponentBits itemizes the succinct encoding by component.
func (s *Static) SuccinctComponentBits() map[string]int { return s.freeze().ComponentBits() }

func (s *Static) freeze() *succinct.Trie {
	if s.frozen == nil {
		s.frozen = succinct.Freeze(s.st)
	}
	return s.frozen
}

// AppendOnly is the append-only Wavelet Trie (Theorem 4.3): Append and
// all queries in O(|s|+h_s), space LB + PT + o(h̃n) bits.
type AppendOnly struct {
	queries
	a *core.AppendOnly
}

// NewAppendOnly returns an empty append-only Wavelet Trie.
func NewAppendOnly() *AppendOnly {
	a := core.NewAppendOnly()
	return &AppendOnly{queries: queries{w: a}, a: a}
}

// NewAppendOnlyFrom builds an AppendOnly pre-loaded with seq.
func NewAppendOnlyFrom(seq []string) *AppendOnly {
	w := NewAppendOnly()
	for _, s := range seq {
		w.Append(s)
	}
	return w
}

// Append appends s at the end of the sequence; unseen strings extend the
// alphabet automatically.
func (a *AppendOnly) Append(s string) { a.a.AppendBits(bitstr.EncodeString(s)) }

// SizeBits returns the measured in-memory footprint in bits.
func (a *AppendOnly) SizeBits() int { return a.a.SizeBits() }

// FeedValues registers this trie's distinct values into fb — one pass-1
// contribution to a streaming freeze. Cost is O(alphabet).
func (a *AppendOnly) FeedValues(fb *FrozenBuilder) {
	for _, bs := range a.a.StoredBits() {
		fb.b.AddValueBits(bs)
	}
}

// FeedRange appends the elements of positions [l, r) into fb in order —
// a pass-2 contribution to a streaming freeze, staying at the bit level
// with a reused scratch buffer (no per-element allocation). Every 4096
// elements it polls cont (when non-nil) and returns nil early if cont
// reports false; the builder is then incomplete and must be discarded,
// which the caller detects by re-checking its cancel signal.
func (a *AppendOnly) FeedRange(fb *FrozenBuilder, l, r int, cont func() bool) error {
	var feedErr error
	i := 0
	a.a.FeedBits(l, r, func(s bitstr.BitString) bool {
		if feedErr = fb.b.AppendBits(s); feedErr != nil {
			return false
		}
		i++
		if i&4095 == 0 && cont != nil && !cont() {
			return false
		}
		return true
	})
	return feedErr
}

// Dynamic is the fully-dynamic Wavelet Trie (Theorem 4.4): Insert and
// Delete at arbitrary positions in O(|s|+h_s·log n), fully dynamic
// alphabet, space LB + PT + O(nH₀) bits.
type Dynamic struct {
	queries
	d *core.Dynamic
}

// NewDynamic returns an empty fully-dynamic Wavelet Trie.
func NewDynamic() *Dynamic {
	d := core.NewDynamic()
	return &Dynamic{queries: queries{w: d}, d: d}
}

// NewDynamicFrom builds a Dynamic pre-loaded with seq.
func NewDynamicFrom(seq []string) *Dynamic {
	w := NewDynamic()
	for _, s := range seq {
		w.Append(s)
	}
	return w
}

// Insert inserts s immediately before position pos (0 ≤ pos ≤ Len()).
func (d *Dynamic) Insert(s string, pos int) { d.d.InsertBits(bitstr.EncodeString(s), pos) }

// Append appends s at the end of the sequence.
func (d *Dynamic) Append(s string) { d.d.AppendBits(bitstr.EncodeString(s)) }

// Delete removes and returns the string at position pos. Deleting the
// last occurrence of a string shrinks the alphabet.
func (d *Dynamic) Delete(pos int) string {
	s, err := bitstr.DecodeString(d.d.DeleteAt(pos))
	if err != nil {
		panic("wavelettrie: internal corruption: " + err.Error())
	}
	return s
}

// SizeBits returns the measured in-memory footprint in bits.
func (d *Dynamic) SizeBits() int { return d.d.SizeBits() }

// EncodedBitvectorBits returns the exact Elias-γ payload size of all node
// bitvectors — the O(nH₀) term of Theorem 4.4 as measured.
func (d *Dynamic) EncodedBitvectorBits() int { return d.d.EncodedBitvectorBits() }
