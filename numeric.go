package wavelettrie

import "repro/internal/hashwt"

// Numeric is the probabilistically-balanced dynamic Wavelet Tree of §6:
// a dynamic sequence of integers from a universe {0,…,2^w-1} whose
// operations cost O(log u + h·log n) where the trie height h is
// O(log|Σ|) with high probability over the structure's own random
// multiplicative hash — |Σ| being the set of values actually present, not
// the universe. Use it for numeric columns where prefix queries are not
// meaningful (Theorem 6.2).
type Numeric struct {
	t *hashwt.Tree
}

// NewNumeric returns an empty Numeric over a universe of universeBits
// bits (1..64). The hash multiplier derives deterministically from seed.
func NewNumeric(universeBits int, seed int64) *Numeric {
	return &Numeric{t: hashwt.New(universeBits, seed)}
}

// Len returns the number of elements.
func (nq *Numeric) Len() int { return nq.t.Len() }

// AlphabetSize returns |Σ|, the number of distinct values present.
func (nq *Numeric) AlphabetSize() int { return nq.t.AlphabetSize() }

// Height returns the current trie height, bounded by (α+2)·log|Σ| with
// probability 1-|Σ|^-α (Theorem 6.2).
func (nq *Numeric) Height() int { return nq.t.Height() }

// Access returns the value at position pos.
func (nq *Numeric) Access(pos int) uint64 { return nq.t.Access(pos) }

// Rank counts occurrences of x in positions [0, pos).
func (nq *Numeric) Rank(x uint64, pos int) int { return nq.t.Rank(x, pos) }

// Select returns the position of the idx-th (0-based) occurrence of x.
func (nq *Numeric) Select(x uint64, idx int) (int, bool) { return nq.t.Select(x, idx) }

// Insert inserts x before position pos.
func (nq *Numeric) Insert(x uint64, pos int) { nq.t.Insert(x, pos) }

// Append appends x at the end.
func (nq *Numeric) Append(x uint64) { nq.t.Append(x) }

// Delete removes and returns the value at position pos.
func (nq *Numeric) Delete(pos int) uint64 { return nq.t.Delete(pos) }

// DistinctInRange returns the distinct values of [l, r) with counts.
func (nq *Numeric) DistinctInRange(l, r int) map[uint64]int { return nq.t.DistinctInRange(l, r) }

// RangeMajority returns the strict majority value of [l, r), if any.
func (nq *Numeric) RangeMajority(l, r int) (uint64, bool) { return nq.t.RangeMajority(l, r) }

// SizeBits returns the measured in-memory footprint in bits.
func (nq *Numeric) SizeBits() int { return nq.t.SizeBits() }
