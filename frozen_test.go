package wavelettrie

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func TestFrozenRoundTrip(t *testing.T) {
	seq := workload.URLLog(3000, 15, workload.DefaultURLConfig())
	st := NewStatic(seq)
	fz := st.Frozen()
	data, err := fz.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadFrozen(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != st.Len() || got.AlphabetSize() != st.AlphabetSize() {
		t.Fatal("totals differ after round trip")
	}
	r := rand.New(rand.NewSource(16))
	for i := 0; i < 3000; i += 7 {
		if got.Access(i) != st.Access(i) {
			t.Fatalf("Access(%d) differs after round trip", i)
		}
	}
	probes := append(workload.Distinct(seq)[:10], "absent", "host0")
	for _, p := range probes {
		pos := r.Intn(3001)
		if got.Rank(p, pos) != st.Rank(p, pos) {
			t.Fatalf("Rank(%q,%d) differs", p, pos)
		}
		if got.RankPrefix(p, pos) != st.RankPrefix(p, pos) {
			t.Fatalf("RankPrefix(%q,%d) differs", p, pos)
		}
		if c := got.Count(p); c > 0 {
			gp, gok := got.Select(p, c-1)
			wp, wok := st.Select(p, c-1)
			if gok != wok || gp != wp {
				t.Fatalf("Select(%q) differs", p)
			}
		}
		if c := got.CountPrefix(p); c > 0 {
			gp, gok := got.SelectPrefix(p, c/2)
			wp, wok := st.SelectPrefix(p, c/2)
			if gok != wok || gp != wp {
				t.Fatalf("SelectPrefix(%q) differs", p)
			}
		}
	}
	// Serialized size tracks the succinct size (8x for bytes->bits, plus
	// headers and word padding).
	if len(data)*8 > st.SuccinctSizeBits()*5/4+1024 {
		t.Fatalf("serialized %d bits vs succinct %d bits", len(data)*8, st.SuccinctSizeBits())
	}
}

func TestFrozenEmptyAndSingleton(t *testing.T) {
	for _, seq := range [][]string{nil, {"one"}, {"a", "a", "a"}} {
		fz := NewStatic(seq).Frozen()
		data, err := fz.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := LoadFrozen(data)
		if err != nil {
			t.Fatalf("seq %v: %v", seq, err)
		}
		if got.Len() != len(seq) {
			t.Fatalf("seq %v: Len=%d", seq, got.Len())
		}
		if len(seq) > 0 && got.Access(0) != seq[0] {
			t.Fatal("content")
		}
	}
}

func TestLoadFrozenRejectsGarbage(t *testing.T) {
	good, _ := NewStatic([]string{"a", "b", "a"}).Frozen().MarshalBinary()
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:4],
		"bad magic":   append([]byte{9, 9, 9, 9}, good[4:]...),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte{}, good...), 0xff),
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{0xff, 0xff}, good[6:]...)...),
	}
	for name, data := range cases {
		if _, err := LoadFrozen(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestFrozenStructuralValidation(t *testing.T) {
	// Flip header fields to violate cross-component invariants; the loader
	// must reject rather than return a structure that panics later.
	good, _ := NewStatic([]string{"aa", "ab", "aa", "ba"}).Frozen().MarshalBinary()
	// Corrupt the element count (bytes 6..14 hold n).
	bad := append([]byte{}, good...)
	bad[6] = 0xFF
	if _, err := LoadFrozen(bad); err == nil {
		// A huge n with a consistent trie is structurally detectable only
		// partially; at minimum it must not panic on basic queries.
		f, _ := LoadFrozen(bad)
		func() {
			defer func() { recover() }()
			if f != nil && f.Len() > 0 {
				_ = f.Rank("aa", 1)
			}
		}()
	}
}
