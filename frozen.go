package wavelettrie

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/succinct"
)

// Frozen is a static Wavelet Trie in the paper's §3 fully-succinct
// encoding: a DFUDS tree, delimited concatenated labels and one
// concatenated RRR bitvector — no pointers at all. It supports the five
// primitive operations at the same O(|s|+h_s) cost as Static, can be
// serialized byte-for-byte (MarshalBinary) and reloaded (LoadFrozen), and
// is the smallest representation in the repository.
type Frozen struct {
	t *succinct.Trie
	// backing, when non-nil, pins the memory region the trie's bit
	// components alias — e.g. an mmap'd file loaded by LoadFrozenMapped.
	// Holding the Frozen keeps the mapping alive; the region is reclaimed
	// by its finalizer once the Frozen is unreachable.
	backing any
}

// Mapped reports whether this Frozen aliases an external memory region
// (an mmap'd file) instead of owning heap copies of its components.
func (f *Frozen) Mapped() bool { return f.backing != nil }

// Frozen returns the succinct encoding of this static trie (built on
// first use and cached).
func (s *Static) Frozen() *Frozen { return &Frozen{t: s.freeze()} }

// LoadFrozen reconstructs a Frozen from MarshalBinary output.
func LoadFrozen(data []byte) (*Frozen, error) { return loadAs[*Frozen](data, kindFrozen) }

// MarshalBinary serializes the succinct encoding into the unified
// container. The payload is the succinct representation itself minus
// its derived rank directories (rebuilt on load), so the on-disk size
// is slightly below SizeBits.
func (f *Frozen) MarshalBinary() ([]byte, error) { return marshal(kindFrozen, f.t.EncodeTo) }

// Len returns the number of elements.
func (f *Frozen) Len() int { return f.t.Len() }

// AlphabetSize returns the number of distinct strings.
func (f *Frozen) AlphabetSize() int { return f.t.AlphabetSize() }

// Height returns the maximum trie depth h.
func (f *Frozen) Height() int { return f.t.Height() }

// SizeBits returns the size of the succinct encoding in bits.
func (f *Frozen) SizeBits() int { return f.t.SizeBits() }

// Access returns the string at position pos.
func (f *Frozen) Access(pos int) string {
	s, err := bitstr.DecodeString(f.t.AccessBits(pos))
	if err != nil {
		panic("wavelettrie: internal corruption: " + err.Error())
	}
	return s
}

// Rank counts occurrences of s in positions [0, pos).
func (f *Frozen) Rank(s string, pos int) int {
	return f.t.RankBits(bitstr.EncodeString(s), pos)
}

// Select returns the position of the idx-th (0-based) occurrence of s.
func (f *Frozen) Select(s string, idx int) (int, bool) {
	return f.t.SelectBits(bitstr.EncodeString(s), idx)
}

// RankPrefix counts elements in [0, pos) having byte prefix p.
func (f *Frozen) RankPrefix(p string, pos int) int {
	return f.t.RankPrefixBits(bitstr.EncodePrefixString(p), pos)
}

// SelectPrefix returns the position of the idx-th element with prefix p.
func (f *Frozen) SelectPrefix(p string, idx int) (int, bool) {
	return f.t.SelectPrefixBits(bitstr.EncodePrefixString(p), idx)
}

// Count returns the total occurrences of s.
func (f *Frozen) Count(s string) int { return f.Rank(s, f.Len()) }

// CountPrefix returns the total elements with byte prefix p.
func (f *Frozen) CountPrefix(p string) int { return f.RankPrefix(p, f.Len()) }

// Iterate streams the elements of positions [l, r) in order, stopping
// early if fn returns false. It walks the trie once with streaming
// bitvector iterators (one Rank per traversed node for the whole range
// instead of one Rank per node per element), so a full sweep is far
// cheaper than repeated Access — this is the enumeration layer that
// compaction and snapshot exports are built on.
func (f *Frozen) Iterate(l, r int, fn func(pos int, s string) bool) {
	if l < 0 || r < l || r > f.Len() {
		panic(fmt.Sprintf("wavelettrie: Iterate(%d,%d) out of range [0,%d]", l, r, f.Len()))
	}
	f.t.EnumerateBits(l, r, func(pos int, bs bitstr.BitString) bool {
		s, err := bitstr.DecodeString(bs)
		if err != nil {
			panic("wavelettrie: internal corruption: " + err.Error())
		}
		return fn(pos, s)
	})
}

// Slice returns the elements of positions [l, r) as a fresh slice,
// materialized through Iterate.
func (f *Frozen) Slice(l, r int) []string {
	if l < 0 || r < l || r > f.Len() {
		panic(fmt.Sprintf("wavelettrie: Slice(%d,%d) out of range [0,%d]", l, r, f.Len()))
	}
	out := make([]string, 0, r-l)
	f.Iterate(l, r, func(_ int, s string) bool {
		out = append(out, s)
		return true
	})
	return out
}

// FeedValues registers this trie's distinct values into fb — one pass-1
// contribution to a streaming merge. Cost is O(alphabet), independent of
// the element count.
func (f *Frozen) FeedValues(fb *FrozenBuilder) {
	for _, bs := range f.t.StoredBits() {
		fb.b.AddValueBits(bs)
	}
}

// FeedRange appends the elements of positions [l, r) into fb in order —
// a pass-2 contribution to a streaming merge, staying at the bit level
// (no string decode/encode round trip, one reused scratch buffer). Every
// 4096 elements it polls cont (when non-nil) and returns nil early if
// cont reports false; the builder is then incomplete and must be
// discarded, which the caller detects by re-checking its cancel signal.
func (f *Frozen) FeedRange(fb *FrozenBuilder, l, r int, cont func() bool) error {
	it := f.t.Iter(l, r)
	scratch := bitstr.NewBuilder(0)
	for i := 0; it.Valid(); i++ {
		scratch.Reset()
		it.NextInto(scratch)
		if err := fb.b.AppendBits(scratch.View()); err != nil {
			return err
		}
		if i&4095 == 4095 && cont != nil && !cont() {
			return nil
		}
	}
	return nil
}

// Values returns the distinct strings stored, in lexicographic order —
// the alphabet Sset of the frozen sequence.
func (f *Frozen) Values() []string {
	stored := f.t.StoredBits()
	out := make([]string, len(stored))
	for i, bs := range stored {
		s, err := bitstr.DecodeString(bs)
		if err != nil {
			panic("wavelettrie: internal corruption: " + err.Error())
		}
		out[i] = s
	}
	return out
}
