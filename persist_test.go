package wavelettrie_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	wavelettrie "repro"
	"repro/internal/workload"
)

// testSeq is a small log with repeats, shared prefixes, an empty string
// and non-ASCII bytes — every edge the binarization has to carry.
func testSeq() []string {
	seq := workload.URLLog(300, 7, workload.DefaultURLConfig())
	seq = append(seq, "", "", "a", "ab", "ab", "abc", "\x00\xff", "\x00")
	return seq
}

// checkStringEquiv asserts that got answers the primitive operations
// identically to want over the whole sequence.
func checkStringEquiv(t *testing.T, want, got wavelettrie.StringIndex, probes []string) {
	t.Helper()
	if got.Len() != want.Len() || got.AlphabetSize() != want.AlphabetSize() {
		t.Fatalf("totals differ: n %d/%d, |Sset| %d/%d",
			got.Len(), want.Len(), got.AlphabetSize(), want.AlphabetSize())
	}
	if got.Height() != want.Height() {
		t.Fatalf("Height %d, want %d", got.Height(), want.Height())
	}
	n := want.Len()
	for pos := 0; pos < n; pos++ {
		if g, w := got.Access(pos), want.Access(pos); g != w {
			t.Fatalf("Access(%d) = %q, want %q", pos, g, w)
		}
	}
	for _, s := range probes {
		for _, pos := range []int{0, 1, n / 3, n / 2, n} {
			if g, w := got.Rank(s, pos), want.Rank(s, pos); g != w {
				t.Fatalf("Rank(%q, %d) = %d, want %d", s, pos, g, w)
			}
			if g, w := got.RankPrefix(s, pos), want.RankPrefix(s, pos); g != w {
				t.Fatalf("RankPrefix(%q, %d) = %d, want %d", s, pos, g, w)
			}
		}
		if g, w := got.Count(s), want.Count(s); g != w {
			t.Fatalf("Count(%q) = %d, want %d", s, g, w)
		}
		if g, w := got.CountPrefix(s), want.CountPrefix(s); g != w {
			t.Fatalf("CountPrefix(%q) = %d, want %d", s, g, w)
		}
		for idx := 0; idx < want.Count(s); idx++ {
			gp, gok := got.Select(s, idx)
			wp, wok := want.Select(s, idx)
			if gp != wp || gok != wok {
				t.Fatalf("Select(%q, %d) = %d,%v want %d,%v", s, idx, gp, gok, wp, wok)
			}
		}
		for _, idx := range []int{0, 2, want.CountPrefix(s) - 1, want.CountPrefix(s)} {
			gp, gok := got.SelectPrefix(s, idx)
			wp, wok := want.SelectPrefix(s, idx)
			if gp != wp || gok != wok {
				t.Fatalf("SelectPrefix(%q, %d) = %d,%v want %d,%v", s, idx, gp, gok, wp, wok)
			}
		}
	}
}

// checkRangeEquiv additionally exercises the §5 analytics.
func checkRangeEquiv(t *testing.T, want, got wavelettrie.RangeIndex) {
	t.Helper()
	n := want.Len()
	windows := [][2]int{{0, n}, {0, n / 2}, {n / 3, 2 * n / 3}, {n - 1, n}, {5, 5}}
	for _, lr := range windows {
		l, r := lr[0], lr[1]
		if !reflect.DeepEqual(got.DistinctInRange(l, r), want.DistinctInRange(l, r)) {
			t.Fatalf("DistinctInRange(%d,%d) differs", l, r)
		}
		gm, gok := got.RangeMajority(l, r)
		wm, wok := want.RangeMajority(l, r)
		if gm != wm || gok != wok {
			t.Fatalf("RangeMajority(%d,%d) = %q,%v want %q,%v", l, r, gm, gok, wm, wok)
		}
		if !reflect.DeepEqual(got.RangeThreshold(l, r, 3), want.RangeThreshold(l, r, 3)) {
			t.Fatalf("RangeThreshold(%d,%d,3) differs", l, r)
		}
		if !reflect.DeepEqual(got.TopK(l, r, 4), want.TopK(l, r, 4)) {
			t.Fatalf("TopK(%d,%d,4) differs", l, r)
		}
		if !reflect.DeepEqual(got.Slice(l, r), want.Slice(l, r)) {
			t.Fatalf("Slice(%d,%d) differs", l, r)
		}
		if !reflect.DeepEqual(got.DistinctPrefixes(l, r, 8), want.DistinctPrefixes(l, r, 8)) {
			t.Fatalf("DistinctPrefixes(%d,%d,8) differs", l, r)
		}
	}
	if got.AvgHeight() != want.AvgHeight() {
		t.Fatalf("AvgHeight %v, want %v", got.AvgHeight(), want.AvgHeight())
	}
}

func probesFor(seq []string) []string {
	probes := append([]string(nil), seq[:10]...)
	probes = append(probes, "", "a", "ab", "no-such-string", seq[0][:1])
	return probes
}

func TestRoundTripStatic(t *testing.T) {
	seq := testSeq()
	orig := wavelettrie.NewStatic(seq)
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := wavelettrie.LoadStatic(data)
	if err != nil {
		t.Fatal(err)
	}
	checkStringEquiv(t, orig, loaded, probesFor(seq))
	checkRangeEquiv(t, orig, loaded)
}

func TestRoundTripAppendOnly(t *testing.T) {
	seq := testSeq()
	orig := wavelettrie.NewAppendOnlyFrom(seq)
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := wavelettrie.LoadAppendOnly(data)
	if err != nil {
		t.Fatal(err)
	}
	checkStringEquiv(t, orig, loaded, probesFor(seq))
	checkRangeEquiv(t, orig, loaded)

	// Appending must resume seamlessly on the loaded index.
	orig.Append("post-snapshot")
	loaded.Append("post-snapshot")
	checkStringEquiv(t, orig, loaded, []string{"post-snapshot"})
}

func TestRoundTripAppendOnlySealedSegments(t *testing.T) {
	// Enough elements that node bitvectors cross the 2^14-bit segment
	// boundary and the RRR-sealed path is exercised.
	seq := workload.URLLog(40000, 3, workload.DefaultURLConfig())
	orig := wavelettrie.NewAppendOnlyFrom(seq)
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := wavelettrie.LoadAppendOnly(data)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		pos := r.Intn(len(seq))
		if g, w := loaded.Access(pos), orig.Access(pos); g != w {
			t.Fatalf("Access(%d) = %q, want %q", pos, g, w)
		}
	}
	for _, s := range seq[:20] {
		if g, w := loaded.Count(s), orig.Count(s); g != w {
			t.Fatalf("Count(%q) = %d, want %d", s, g, w)
		}
	}
}

func TestRoundTripDynamic(t *testing.T) {
	seq := testSeq()
	orig := wavelettrie.NewDynamicFrom(seq)
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := wavelettrie.LoadDynamic(data)
	if err != nil {
		t.Fatal(err)
	}
	checkStringEquiv(t, orig, loaded, probesFor(seq))
	checkRangeEquiv(t, orig, loaded)

	// Mutations must resume on the loaded index.
	orig.Insert("mid-insert", 3)
	loaded.Insert("mid-insert", 3)
	if g, w := orig.Delete(10), loaded.Delete(10); g != w {
		t.Fatalf("Delete(10) = %q vs %q", w, g)
	}
	checkStringEquiv(t, orig, loaded, []string{"mid-insert"})
}

func TestRoundTripNumeric(t *testing.T) {
	orig := wavelettrie.NewNumeric(32, 42)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		orig.Append(uint64(r.Intn(64)))
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := wavelettrie.LoadNumeric(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() || loaded.AlphabetSize() != orig.AlphabetSize() ||
		loaded.Height() != orig.Height() {
		t.Fatal("totals differ after round trip")
	}
	for pos := 0; pos < orig.Len(); pos++ {
		if g, w := loaded.Access(pos), orig.Access(pos); g != w {
			t.Fatalf("Access(%d) = %d, want %d", pos, g, w)
		}
	}
	for x := uint64(0); x < 64; x++ {
		if g, w := loaded.Rank(x, orig.Len()), orig.Rank(x, orig.Len()); g != w {
			t.Fatalf("Rank(%d) = %d, want %d", x, g, w)
		}
		gp, gok := loaded.Select(x, 2)
		wp, wok := orig.Select(x, 2)
		if gp != wp || gok != wok {
			t.Fatalf("Select(%d,2) differs", x)
		}
	}
	if !reflect.DeepEqual(loaded.DistinctInRange(10, 400), orig.DistinctInRange(10, 400)) {
		t.Fatal("DistinctInRange differs")
	}
	// The loaded tree must keep accepting mutations with the same hash.
	orig.Insert(99, 0)
	loaded.Insert(99, 0)
	if g, w := loaded.Access(0), orig.Access(0); g != w {
		t.Fatalf("post-load Insert: Access(0) = %d, want %d", g, w)
	}
}

func TestRoundTripFrozen(t *testing.T) {
	seq := testSeq()
	orig := wavelettrie.NewStatic(seq).Frozen()
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := wavelettrie.LoadFrozen(data)
	if err != nil {
		t.Fatal(err)
	}
	checkStringEquiv(t, orig, loaded, probesFor(seq))
}

func TestRoundTripEmpty(t *testing.T) {
	for name, ix := range map[string]wavelettrie.Index{
		"appendonly": wavelettrie.NewAppendOnly(),
		"dynamic":    wavelettrie.NewDynamic(),
		"static":     wavelettrie.NewStatic(nil),
		"numeric":    wavelettrie.NewNumeric(16, 1),
		"frozen":     wavelettrie.NewStatic(nil).Frozen(),
	} {
		data, err := ix.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		loaded, err := wavelettrie.Load(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if loaded.Len() != 0 || loaded.AlphabetSize() != 0 {
			t.Fatalf("%s: loaded empty index has n=%d", name, loaded.Len())
		}
	}
}

// TestLoadDispatch verifies the generic loader restores the concrete
// variant and the typed loaders reject kind mismatches.
func TestLoadDispatch(t *testing.T) {
	seq := testSeq()
	data, err := wavelettrie.NewAppendOnlyFrom(seq).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := wavelettrie.Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.(*wavelettrie.AppendOnly); !ok {
		t.Fatalf("Load returned %T, want *AppendOnly", ix)
	}
	if _, err := wavelettrie.LoadDynamic(data); err == nil {
		t.Fatal("LoadDynamic accepted an AppendOnly snapshot")
	}
	if _, err := wavelettrie.LoadStatic(data); err == nil {
		t.Fatal("LoadStatic accepted an AppendOnly snapshot")
	}
}

// TestLoadRejectsCorrupt checks that truncations and structured
// corruptions return errors, and arbitrary single-byte flips never
// panic.
func TestLoadRejectsCorrupt(t *testing.T) {
	seq := testSeq()
	for name, ix := range map[string]wavelettrie.Index{
		"static":     wavelettrie.NewStatic(seq),
		"appendonly": wavelettrie.NewAppendOnlyFrom(seq),
		"dynamic":    wavelettrie.NewDynamicFrom(seq),
		"frozen":     wavelettrie.NewStatic(seq).Frozen(),
	} {
		data, err := ix.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{0, 1, 5, 6, 7, len(data) / 2, len(data) - 1} {
			if _, err := wavelettrie.Load(data[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d bytes accepted", name, cut)
			}
		}
		if _, err := wavelettrie.Load(append(bytes.Clone(data), 0)); err == nil {
			t.Fatalf("%s: trailing garbage accepted", name)
		}
		r := rand.New(rand.NewSource(11))
		for i := 0; i < 300; i++ {
			mut := bytes.Clone(data)
			mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
			ix, err := wavelettrie.Load(mut) // must not panic
			if err != nil {
				continue
			}
			exerciseLoaded(ix)
		}
	}
}

// exerciseLoaded drives the query surface of a successfully loaded
// index; a Load that accepted corrupt input must still never panic.
func exerciseLoaded(ix wavelettrie.Index) {
	n := ix.Len()
	ix.AlphabetSize()
	ix.Height()
	ix.SizeBits()
	if si, ok := ix.(wavelettrie.StringIndex); ok && n > 0 {
		for _, pos := range []int{0, n / 2, n - 1} {
			s := si.Access(pos)
			si.Rank(s, n)
			si.Select(s, 0)
			si.RankPrefix(s, n)
			si.SelectPrefix(s, 1)
			si.Count(s)
			si.CountPrefix(s)
		}
		si.Rank("probe", n)
		si.SelectPrefix("p", 0)
	}
	if ri, ok := ix.(wavelettrie.RangeIndex); ok && n > 0 {
		ri.DistinctInRange(0, n)
		ri.RangeMajority(0, n)
		ri.RangeThreshold(0, n, 2)
		ri.TopK(0, n, 3)
		ri.Slice(0, min(n, 16))
		ri.DistinctPrefixes(0, n, 4)
		ri.AvgHeight()
	}
	if nq, ok := ix.(*wavelettrie.Numeric); ok && n > 0 {
		x := nq.Access(n - 1)
		nq.Rank(x, n)
		nq.Select(x, 0)
		nq.DistinctInRange(0, n)
		nq.RangeMajority(0, n)
	}
}

// TestLoadRejectsDeepChainBomb feeds Load a crafted snapshot whose
// patricia stream nests one million internal nodes (the stack-overflow
// shape: constant bytes per level, no leaves). The decoder walks it
// with a heap stack, so it must return an error — not exhaust the
// goroutine stack and kill the process.
func TestLoadRejectsDeepChainBomb(t *testing.T) {
	const levels = 1_000_000
	buf := make([]byte, 0, 16+levels*33)
	le64 := func(v uint64) {
		for k := 0; k < 8; k++ {
			buf = append(buf, byte(v>>(8*k)))
		}
	}
	buf = append(buf, 0x54, 0x4c, 0x56, 0x57) // magic "WVLT" little-endian
	buf = append(buf, 1, 0)                   // version
	buf = append(buf, 3)                      // kind: Dynamic
	le64(1)                                   // n
	le64(1)                                   // trie size (leaf count)
	for i := 0; i < levels; i++ {
		le64(0)              // label bits
		le64(0)              // label words
		buf = append(buf, 1) // internal flag
		// A minimal valid dynbv payload (γ stream "1" = empty vector), so
		// the decoder keeps descending instead of failing at level one.
		le64(1) // RLE stream bits
		le64(1) // RLE stream words
		le64(1) // the stream itself
	}
	if _, err := wavelettrie.Load(buf); err == nil {
		t.Fatal("deep-chain bomb accepted")
	}
}

func FuzzLoad(f *testing.F) {
	seq := testSeq()[:40]
	addSeed := func(ix wavelettrie.Index) {
		data, err := ix.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	addSeed(wavelettrie.NewStatic(seq))
	addSeed(wavelettrie.NewAppendOnlyFrom(seq))
	addSeed(wavelettrie.NewDynamicFrom(seq))
	addSeed(wavelettrie.NewStatic(seq).Frozen())
	num := wavelettrie.NewNumeric(16, 3)
	for i := 0; i < 50; i++ {
		num.Append(uint64(i % 7))
	}
	addSeed(num)
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x4c, 0x56, 0x57, 1, 0, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := wavelettrie.Load(data)
		if err != nil {
			return
		}
		if ix.Len() > 1<<30 {
			// A snapshot can legitimately describe a huge virtual run;
			// skip the full exercise to bound fuzz iteration cost.
			return
		}
		exerciseLoaded(ix)
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Example of the snapshot lifecycle used in doc.go.
func ExampleLoadAppendOnly() {
	wt := wavelettrie.NewAppendOnly()
	for _, u := range []string{"a/1", "a/2", "a/1", "b/1"} {
		wt.Append(u)
	}
	snap, _ := wt.MarshalBinary() // checkpoint: ship snap to disk or peers
	reopened, _ := wavelettrie.LoadAppendOnly(snap)
	reopened.Append("b/2") // resume appending
	fmt.Println(reopened.Len(), reopened.CountPrefix("a/"))
	// Output: 5 3
}
