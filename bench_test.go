package wavelettrie

// Root-level benchmarks: one Benchmark group per paper artifact (see
// DESIGN.md §3). These are the testing.B counterparts of cmd/wtbench;
// run with
//
//	go test -bench=. -benchmem
//
// Custom metrics report the space quantities next to the time ones:
// bits/elem for measured size, lb-bits/elem for the independent lower
// bound, so `go test -bench` output alone documents the space story.

import (
	"math/rand"
	"testing"

	"repro/internal/appendbv"
	"repro/internal/dynbv"
	"repro/internal/entropy"
	"repro/internal/hashwt"
	"repro/internal/workload"
)

const benchN = 1 << 16

func benchSeq() []string {
	return workload.URLLog(benchN, 1, workload.DefaultURLConfig())
}

func benchPool() []string {
	return workload.URLPool(2048, 1, workload.DefaultURLConfig())
}

// --- T1a: static queries -------------------------------------------------

func BenchmarkT1aStaticAccess(b *testing.B) {
	w := NewStatic(benchSeq())
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Access(r.Intn(w.Len()))
	}
}

func BenchmarkT1aStaticRank(b *testing.B) {
	seq := benchSeq()
	w := NewStatic(seq)
	dist := workload.Distinct(seq)
	r := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Rank(dist[i%len(dist)], r.Intn(w.Len()+1))
	}
}

func BenchmarkT1aStaticSelect(b *testing.B) {
	seq := benchSeq()
	w := NewStatic(seq)
	dist := workload.Distinct(seq)[:64]
	counts := make([]int, len(dist))
	for i, s := range dist {
		counts[i] = w.Count(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(dist)
		if counts[j] > 0 {
			w.Select(dist[j], i%counts[j])
		}
	}
}

func BenchmarkT1aStaticRankPrefix(b *testing.B) {
	seq := benchSeq()
	w := NewStatic(seq)
	r := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RankPrefix("host01.example", r.Intn(w.Len()+1))
	}
}

func BenchmarkT1aStaticSelectPrefix(b *testing.B) {
	seq := benchSeq()
	w := NewStatic(seq)
	total := w.CountPrefix("host01.example")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.SelectPrefix("host01.example", i%total)
	}
}

// --- T1b: static space ---------------------------------------------------

func BenchmarkT1bStaticSpace(b *testing.B) {
	seq := benchSeq()
	var w *Static
	for i := 0; i < b.N; i++ {
		w = NewStatic(seq)
	}
	lb := entropy.LB(seq)
	b.ReportMetric(float64(w.SuccinctSizeBits())/float64(w.Len()), "succinct-bits/elem")
	b.ReportMetric(float64(w.SizeBits())/float64(w.Len()), "pointer-bits/elem")
	b.ReportMetric(lb/float64(w.Len()), "lb-bits/elem")
}

// --- T2a/T2b: append-only ------------------------------------------------

func BenchmarkT2aAppend(b *testing.B) {
	seq := benchSeq()
	w := NewAppendOnly()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Append(seq[i%len(seq)])
	}
	b.ReportMetric(float64(w.SizeBits())/float64(w.Len()), "bits/elem")
}

func BenchmarkT2bAppendOnlyQueryAccess(b *testing.B) {
	w := NewAppendOnlyFrom(benchSeq())
	r := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Access(r.Intn(w.Len()))
	}
}

func BenchmarkT2bAppendOnlyQueryRankPrefix(b *testing.B) {
	w := NewAppendOnlyFrom(benchSeq())
	r := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RankPrefix("host01.example", r.Intn(w.Len()+1))
	}
}

// --- T2c: append-only space ---------------------------------------------

func BenchmarkT2cAppendOnlySpace(b *testing.B) {
	seq := benchSeq()
	var w *AppendOnly
	for i := 0; i < b.N; i++ {
		w = NewAppendOnlyFrom(seq)
	}
	lb := entropy.LB(seq)
	b.ReportMetric(float64(w.SizeBits())/float64(w.Len()), "bits/elem")
	b.ReportMetric(lb/float64(w.Len()), "lb-bits/elem")
}

// --- T3a: dynamic operations ----------------------------------------------

func benchDynamic(n int) (*Dynamic, []string) {
	pool := benchPool()
	seq := workload.FromPool(n, pool, 1.2, 2)
	return NewDynamicFrom(seq), pool
}

func BenchmarkT3aDynamicInsert(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(sizeName(n), func(b *testing.B) {
			w, pool := benchDynamic(n)
			r := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Insert(pool[i%len(pool)], r.Intn(w.Len()+1))
			}
		})
	}
}

func BenchmarkT3aDynamicDelete(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(sizeName(n), func(b *testing.B) {
			w, pool := benchDynamic(n)
			r := rand.New(rand.NewSource(8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if w.Len() == 0 {
					b.StopTimer()
					w, _ = benchDynamic(n)
					b.StartTimer()
				}
				w.Delete(r.Intn(w.Len()))
			}
			_ = pool
		})
	}
}

func BenchmarkT3aDynamicAccess(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(sizeName(n), func(b *testing.B) {
			w, _ := benchDynamic(n)
			r := rand.New(rand.NewSource(9))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Access(r.Intn(w.Len()))
			}
		})
	}
}

// --- T3b: dynamic space ----------------------------------------------------

func BenchmarkT3bDynamicSpace(b *testing.B) {
	seq := benchSeq()
	var w *Dynamic
	for i := 0; i < b.N; i++ {
		w = NewDynamicFrom(seq)
	}
	nh0 := entropy.NH0Strings(seq)
	b.ReportMetric(float64(w.EncodedBitvectorBits())/nh0, "payload/nH0")
	b.ReportMetric(float64(w.SizeBits())/float64(w.Len()), "bits/elem")
}

// --- T4: append-only bitvector --------------------------------------------

func BenchmarkT4AppendBVAppend(b *testing.B) {
	v := appendbv.New()
	r := rand.New(rand.NewSource(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Append(byte(r.Intn(2)))
	}
}

func BenchmarkT4AppendBVRank(b *testing.B) {
	v := appendbv.New()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 1<<22; i++ {
		v.Append(byte(r.Intn(2)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Rank1(r.Intn(v.Len()))
	}
	b.ReportMetric(float64(v.SizeBits())/float64(v.Len()), "bits/bit")
}

func BenchmarkT4AppendBVSelect(b *testing.B) {
	v := appendbv.New()
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 1<<22; i++ {
		v.Append(byte(r.Intn(2)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Select1(r.Intn(v.Ones()))
	}
}

// --- T5: dynamic bitvector --------------------------------------------------

func BenchmarkT5DynBVInsert(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 18} {
		b.Run(sizeName(n), func(b *testing.B) {
			r := rand.New(rand.NewSource(13))
			v := dynbv.New()
			for i := 0; i < n; i++ {
				v.Insert(r.Intn(v.Len()+1), byte(r.Intn(2)))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Insert(r.Intn(v.Len()+1), byte(i&1))
			}
		})
	}
}

func BenchmarkT5DynBVInit(b *testing.B) {
	// Init must be O(log n) regardless of length (Remark 4.2).
	for _, n := range []int{1 << 10, 1 << 30} {
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := dynbv.NewInit(1, n)
				v.Insert(n/2, 0)
			}
		})
	}
}

// --- T6: randomized wavelet tree -------------------------------------------

func BenchmarkT6HashWTAppend(b *testing.B) {
	tr := hashwt.New(64, 14)
	vals := workload.NumericColumn(1<<12, 1024, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Append(vals[i%len(vals)])
	}
	b.ReportMetric(float64(tr.Height()), "trie-height")
}

// --- Q5: range algorithms ----------------------------------------------------

func BenchmarkQ5Enumerate(b *testing.B) {
	w := NewStatic(benchSeq())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		w.Enumerate(0, w.Len(), func(int, string) bool {
			count++
			return true
		})
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchN), "ns/elem")
}

func BenchmarkQ5RepeatedAccess(b *testing.B) {
	w := NewStatic(benchSeq())
	n := w.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Access(i % n)
	}
}

func BenchmarkQ5DistinctInRange(b *testing.B) {
	w := NewStatic(benchSeq())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.DistinctInRange(benchN/4, 3*benchN/4)
	}
}

func BenchmarkQ5RangeMajority(b *testing.B) {
	w := NewStatic(benchSeq())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RangeMajority(benchN/4, 3*benchN/4)
	}
}

// --- CMP: §1 comparison -------------------------------------------------------

func BenchmarkCMPSpace(b *testing.B) {
	seq := benchSeq()
	var w *Static
	for i := 0; i < b.N; i++ {
		w = NewStatic(seq)
	}
	raw := 0
	for _, s := range seq {
		raw += len(s) * 8
	}
	b.ReportMetric(float64(w.SuccinctSizeBits())/float64(raw), "x-raw")
	b.ReportMetric(float64(w.SuccinctSizeBits())/entropy.LB(seq), "x-lb")
}

func sizeName(n int) string {
	switch {
	case n >= 1<<30:
		return "n=1Gi"
	case n >= 1<<20:
		return "n=" + itoa(n>>20) + "Mi"
	case n >= 1<<10:
		return "n=" + itoa(n>>10) + "Ki"
	default:
		return "n=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
