package wavelettrie

import (
	"repro/internal/bitstr"
	"repro/internal/succinct"
)

// FrozenBuilder streams a sequence of strings into a Frozen without ever
// materializing the input as a []string. It is the write-side counterpart
// of the streaming iterators: the peak memory is the output trie shape
// plus one growing bit accumulator per internal node — independent of the
// element count beyond the nH₀ bits the result itself occupies.
//
// The protocol is two passes over a replayable source:
//
//  1. AddValue once per element (or once per *distinct* value, if the
//     caller knows the distinct set) — sketches the Patricia shape.
//  2. Append once per element in sequence order — routes each element
//     root-to-leaf, one bit per internal node on the path.
//  3. Build — emits the Frozen.
//
// The result is bit-identical (marshalled bytes and all) to
// NewStatic(seq).Frozen() for the same sequence: Patricia tries are
// canonical, and the builder replays the exact preorder assembly of the
// §3 encoder. FreezeIterate packages the two passes for callback-style
// sources; the store's flush and compaction feed a builder directly via
// the FeedValues/FeedRange methods, staying at the bit level end to end.
//
// A FrozenBuilder must not be used from multiple goroutines concurrently.
type FrozenBuilder struct {
	b *succinct.Builder
}

// NewFrozenBuilder returns an empty streaming builder.
func NewFrozenBuilder() *FrozenBuilder {
	return &FrozenBuilder{b: succinct.NewBuilder()}
}

// AddValue registers one element during pass 1. Duplicate values are
// cheap no-ops. It panics if called after the first Append.
func (fb *FrozenBuilder) AddValue(s string) {
	fb.b.AddValueBits(bitstr.EncodeString(s))
}

// Append routes one element during pass 2; the first call seals the
// shape. It returns an error if s was not registered in pass 1 — the two
// passes saw different streams.
func (fb *FrozenBuilder) Append(s string) error {
	return fb.b.AppendBits(bitstr.EncodeString(s))
}

// Len returns the number of elements appended so far (pass 2).
func (fb *FrozenBuilder) Len() int { return fb.b.Len() }

// Build emits the Frozen. The builder must not be used afterwards. It
// returns an error when some registered value was never appended.
func (fb *FrozenBuilder) Build() (*Frozen, error) {
	t, err := fb.b.Build()
	if err != nil {
		return nil, err
	}
	return &Frozen{t: t}, nil
}

// FreezeIterate builds a Frozen from a replayable iteration: iterate is
// called exactly twice with a yield callback that must see the same
// sequence both times (pass 1 registers values, pass 2 appends). It is
// the bridge from callback-style sources — store snapshots, merged
// generation walks — to the streaming builder, replacing the
// NewStatic(Slice(0, n)) pattern and its O(n) string materialization.
func FreezeIterate(iterate func(yield func(s string) bool)) (*Frozen, error) {
	fb := NewFrozenBuilder()
	iterate(func(s string) bool {
		fb.AddValue(s)
		return true
	})
	var appendErr error
	iterate(func(s string) bool {
		appendErr = fb.Append(s)
		return appendErr == nil
	})
	if appendErr != nil {
		return nil, appendErr
	}
	return fb.Build()
}
