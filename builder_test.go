package wavelettrie

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// buildViaBuilder runs the two-pass streaming freeze over seq.
func buildViaBuilder(t *testing.T, seq []string) *Frozen {
	t.Helper()
	fb := NewFrozenBuilder()
	for _, s := range seq {
		fb.AddValue(s)
	}
	for _, s := range seq {
		if err := fb.Append(s); err != nil {
			t.Fatalf("Append(%q): %v", s, err)
		}
	}
	f, err := fb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

// checkBitIdentical asserts the streaming builder's output is
// byte-for-byte the static freeze of the same sequence — the Patricia
// trie is canonical in the string set and both paths emit the same
// preorder walk, so any divergence is a builder bug.
func checkBitIdentical(t *testing.T, seq []string) {
	t.Helper()
	want, err := NewStatic(seq).Frozen().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := buildViaBuilder(t, seq).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("builder output differs from static freeze (%d vs %d bytes, n=%d)",
			len(got), len(want), len(seq))
	}
}

func TestBuilderBitIdenticalAdversarial(t *testing.T) {
	cases := map[string][]string{
		"single":          {"x"},
		"empty strings":   {"", "", ""},
		"empty mixed":     {"", "a", "", "ab", "", "a"},
		"single symbol":   {"a", "a", "a", "a", "a", "a", "a"},
		"single alphabet": {"a", "aa", "aaa", "aa", "a", "aaaa", "aaa", "aa"},
		"shared prefixes": {"/api/v1/users", "/api/v1/items", "/api/v2/users", "/api", "/api/v1/users"},
		"binary-ish":      {"\x00", "\x00\x00", "\x01", "\xff", "\x00\x01", "\x00"},
		"two values":      {"left", "right", "left", "left", "right"},
	}
	for name, seq := range cases {
		t.Run(name, func(t *testing.T) { checkBitIdentical(t, seq) })
	}
}

func TestBuilderBitIdenticalRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	alphabets := [][]string{
		{"a"},               // single symbol
		{"", "a", "b"},      // empty string in the alphabet
		{"x", "xy", "xyz"},  // chain of prefixes
		make([]string, 200), // large random alphabet
	}
	for i := range alphabets[3] {
		alphabets[3][i] = fmt.Sprintf("key-%04d-%d", r.Intn(500), i%7)
	}
	for ai, alpha := range alphabets {
		for _, n := range []int{1, 2, 17, 256, 1500} {
			seq := make([]string, n)
			for i := range seq {
				seq[i] = alpha[r.Intn(len(alpha))]
			}
			t.Run(fmt.Sprintf("alphabet%d/n%d", ai, n), func(t *testing.T) {
				checkBitIdentical(t, seq)
			})
		}
	}
	t.Run("urllog", func(t *testing.T) {
		checkBitIdentical(t, workload.URLLog(4000, 9, workload.DefaultURLConfig()))
	})
}

func TestFreezeIterateMatchesStatic(t *testing.T) {
	seq := workload.URLLog(2500, 5, workload.DefaultURLConfig())
	f, err := FreezeIterate(func(yield func(s string) bool) {
		for _, s := range seq {
			if !yield(s) {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewStatic(seq).Frozen().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("FreezeIterate output differs from static freeze")
	}
}

func TestBuilderEmpty(t *testing.T) {
	fb := NewFrozenBuilder()
	f, err := fb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 {
		t.Fatalf("empty builder Len = %d", f.Len())
	}
	got, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewStatic(nil).Frozen().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("empty builder output differs from empty static freeze")
	}
}

func TestBuilderErrors(t *testing.T) {
	// Pass-2 element never registered in pass 1.
	fb := NewFrozenBuilder()
	fb.AddValue("known")
	if err := fb.Append("unknown"); err == nil {
		t.Fatal("Append of unregistered value should error")
	}

	// Registered but never appended.
	fb = NewFrozenBuilder()
	fb.AddValue("a")
	fb.AddValue("b")
	if err := fb.Append("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fb.Build(); err == nil {
		t.Fatal("Build with an unfed leaf should error")
	}

	// Appending with no registered values at all.
	fb = NewFrozenBuilder()
	if err := fb.Append("x"); err == nil {
		t.Fatal("Append with no registered values should error")
	}
}

// TestBuilderFedFromFrozen exercises the compaction-merge feed path:
// two frozen halves streamed into one builder must reproduce the static
// freeze of the concatenation exactly.
func TestBuilderFedFromFrozen(t *testing.T) {
	seq := workload.URLLog(3000, 11, workload.DefaultURLConfig())
	left := NewStatic(seq[:1200]).Frozen()
	right := NewStatic(seq[1200:]).Frozen()

	fb := NewFrozenBuilder()
	left.FeedValues(fb)
	right.FeedValues(fb)
	for _, f := range []*Frozen{left, right} {
		if err := f.FeedRange(fb, 0, f.Len(), nil); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := fb.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewStatic(seq).Frozen().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("frozen-fed builder output differs from static freeze of the concatenation")
	}
}

// TestLoadFrozenMappedMatches checks the zero-copy decode path answers
// exactly like the copying one, whatever the buffer's alignment.
func TestLoadFrozenMappedMatches(t *testing.T) {
	seq := workload.URLLog(2000, 7, workload.DefaultURLConfig())
	data, err := NewStatic(seq).Frozen().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LoadFrozenMapped(data, data)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := LoadFrozenTrusted(data)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Mapped() {
		t.Fatal("LoadFrozenMapped result not marked mapped")
	}
	for i := 0; i < len(seq); i += 37 {
		if g, w := ref.Access(i), heap.Access(i); g != w {
			t.Fatalf("Access(%d) = %q, want %q", i, g, w)
		}
	}
	for _, s := range []string{seq[0], seq[7], "absent-value"} {
		if g, w := ref.Count(s), heap.Count(s); g != w {
			t.Fatalf("Count(%q) = %d, want %d", s, g, w)
		}
		if g, w := ref.Rank(s, len(seq)/2), heap.Rank(s, len(seq)/2); g != w {
			t.Fatalf("Rank(%q) = %d, want %d", s, g, w)
		}
	}
}
