package wavelettrie_test

import (
	"fmt"

	wavelettrie "repro"
)

// The basic indexed-sequence operations on an immutable sequence.
func ExampleNewStatic() {
	wt := wavelettrie.NewStatic([]string{"get", "put", "get", "del", "get"})
	fmt.Println(wt.Access(3))
	fmt.Println(wt.Rank("get", 4))
	pos, _ := wt.Select("get", 2)
	fmt.Println(pos)
	// Output:
	// del
	// 2
	// 4
}

// Prefix queries work on byte prefixes of the stored strings.
func ExampleAppendOnly_prefixQueries() {
	wt := wavelettrie.NewAppendOnly()
	for _, u := range []string{"a.com/x", "b.org/y", "a.com/z", "a.com/x"} {
		wt.Append(u)
	}
	fmt.Println(wt.CountPrefix("a.com/"))
	pos, _ := wt.SelectPrefix("a.com/", 1)
	fmt.Println(pos, wt.Access(pos))
	// Output:
	// 3
	// 2 a.com/z
}

// The dynamic variant inserts and deletes at arbitrary positions, and the
// alphabet follows: deleting the last occurrence removes the string from
// the underlying trie.
func ExampleDynamic() {
	wt := wavelettrie.NewDynamic()
	wt.Append("b")
	wt.Insert("a", 0)
	wt.Insert("c", 2)
	fmt.Println(wt.Slice(0, 3), wt.AlphabetSize())
	wt.Delete(2)
	fmt.Println(wt.Slice(0, 2), wt.AlphabetSize())
	// Output:
	// [a b c] 3
	// [a b] 2
}

// Range analytics (§5 of the paper): distinct values, majority and top-k
// over any positional window.
func ExampleDynamic_rangeAnalytics() {
	wt := wavelettrie.NewDynamicFrom([]string{"x", "y", "x", "x", "z", "x"})
	for _, d := range wt.DistinctInRange(0, 6) {
		fmt.Println(d.Value, d.Count)
	}
	if m, ok := wt.RangeMajority(0, 6); ok {
		fmt.Println("majority:", m)
	}
	// Output:
	// x 4
	// y 1
	// z 1
	// majority: x
}

// DistinctPrefixes groups a window by a fixed-width byte prefix without
// materializing the strings — "distinct hostnames in a time range".
func ExampleStatic_distinctPrefixes() {
	wt := wavelettrie.NewStatic([]string{
		"aa/1", "ab/2", "aa/3", "bb/4", "aa/5",
	})
	for _, g := range wt.DistinctPrefixes(0, 5, 2) {
		fmt.Println(g.Value, g.Count)
	}
	// Output:
	// aa 3
	// ab 1
	// bb 1
}

// A static trie freezes into the paper's §3 succinct encoding, which can
// be serialized and reloaded without rebuilding.
func ExampleStatic_frozen() {
	wt := wavelettrie.NewStatic([]string{"red", "green", "red", "blue"})
	data, _ := wt.Frozen().MarshalBinary()
	loaded, _ := wavelettrie.LoadFrozen(data)
	fmt.Println(loaded.Len(), loaded.Count("red"))
	pos, _ := loaded.Select("blue", 0)
	fmt.Println(pos)
	// Output:
	// 4 2
	// 3
}

// Numeric sequences use the §6 randomized wavelet tree: the universe is
// 2^64 but the height tracks only the values actually present.
func ExampleNumeric() {
	nq := wavelettrie.NewNumeric(64, 1)
	for _, v := range []uint64{10, 99, 10, 10} {
		nq.Append(v)
	}
	fmt.Println(nq.Access(1), nq.Rank(10, 4))
	pos, _ := nq.Select(10, 2)
	fmt.Println(pos)
	// Output:
	// 99 3
	// 3
}
