// Package wavelettrie is a Go implementation of the Wavelet Trie of
// Roberto Grossi and Giuseppe Ottaviano, "The Wavelet Trie: Maintaining
// an Indexed Sequence of Strings in Compressed Space" (PODS 2012,
// arXiv:1204.3581) — a compressed indexed sequence of strings.
//
// # The problem
//
// An indexed sequence of strings stores a sequence S = ⟨s₀,…,s_{n-1}⟩
// (strings repeat; order matters) and supports, beyond positional access:
//
//	Access(pos)            the string at position pos
//	Rank(s, pos)           occurrences of s before position pos
//	Select(s, idx)         position of the idx-th occurrence of s
//	RankPrefix(p, pos)     elements before pos having prefix p
//	SelectPrefix(p, idx)   position of the idx-th element with prefix p
//
// plus range analytics (distinct values, range majority, top-k, threshold
// counting) and, in the dynamic variants, Insert/Append/Delete — all in
// compressed space close to the information-theoretic lower bound
// LB(S) = LT(Sset) + nH₀(S).
//
// # The three variants
//
//   - Static: immutable, queries in O(|s|+h_s), space LB + o(h̃n).
//   - AppendOnly: additionally Append in O(|s|+h_s) — index a log on the
//     fly; space LB + PT + o(h̃n).
//   - Dynamic: arbitrary Insert and Delete in O(|s|+h_s·log n), with a
//     fully dynamic alphabet (unseen strings simply work); space
//     LB + PT + O(nH₀).
//
// Here h_s is the number of Patricia-trie nodes on s's path (h_s ≤ |s|
// bits, typically far smaller thanks to path compression), h̃ the average
// over the sequence, and PT the Patricia trie pointer overhead.
//
// Numeric sequences over a bounded universe are served by Numeric, the §6
// randomized Wavelet Tree, whose height depends only on the working
// alphabet (w.h.p.), not the universe. The Frozen type is the §3
// fully-succinct encoding of a Static — the smallest representation,
// serving the five primitive operations with no pointers at all.
//
// # The Index interface and persistence
//
// Every variant — Static, AppendOnly, Dynamic, Numeric, Frozen —
// satisfies the Index interface: the structural accessors plus
// MarshalBinary. The string-serving variants additionally satisfy
// StringIndex (the primitive operations), and Static, AppendOnly and
// Dynamic satisfy RangeIndex (the full §5 analytics surface). Tools
// program against these interfaces, so an index can be swapped for
// another variant — or for one reopened from a snapshot — without code
// changes.
//
// MarshalBinary produces a self-contained, versioned binary snapshot
// (see DESIGN.md §4 for the wire formats); Load reopens any snapshot,
// and LoadStatic/LoadAppendOnly/LoadDynamic/LoadNumeric/LoadFrozen
// enforce a concrete variant. Loading performs no O(n·|s|) rebuild —
// only rank-directory reconstruction — so a process restart costs
// milliseconds instead of a full re-index, and mutations resume on the
// loaded index:
//
//	data, _ := wt.MarshalBinary()          // checkpoint a live index
//	os.WriteFile("index.wt", data, 0o644)  // ship it to disk or peers
//	...
//	data, _ = os.ReadFile("index.wt")
//	wt, _ = wavelettrie.LoadAppendOnly(data)
//	wt.Append("resumes/immediately")
//
// Snapshots are validated on load: corrupt or truncated input returns
// an error (never panics), and a successfully loaded index is safe
// across its whole query surface.
//
// # The durable store
//
// The store subpackage (repro/store) turns the persistence layer into a
// full storage engine: a log-structured, crash-recoverable store whose
// writes go through a checksummed write-ahead log into an AppendOnly
// memtable, whose flushed runs are Frozen generations recorded in an
// atomically-rewritten manifest, and whose reads are snapshot-isolated —
// lock-free across generations, concurrent with appends and compaction.
// For multi-writer scaling, store.ShardedStore hash-partitions the
// sequence over N such stores and serves it back in global append order
// through cross-shard snapshots. Both satisfy StringIndex, so they drop
// into anything programmed against the interface family (wtquery serves
// them with -store and -shards). See DESIGN.md §5 for the on-disk
// formats and crash matrix, and §7 for the sharding design.
//
// The server subpackage (repro/server) and the cmd/wtserve binary put
// either store on the network: a compact binary protocol and an
// HTTP/JSON gateway, group-committed appends (concurrent clients
// coalesce into one WAL write and at most one fsync per batch),
// pinned-snapshot reads with leased iteration cursors, and a result
// cache keyed by snapshot fingerprint so invalidation is free. See
// DESIGN.md §8 for the protocol and drain semantics.
//
// # Example
//
//	wt := wavelettrie.NewAppendOnly()
//	for _, url := range accessLog {
//		wt.Append(url)
//	}
//	hits := wt.RankPrefix("host01.example/", wt.Len()) // prefix count
//	pos, ok := wt.SelectPrefix("host01.example/", 41)  // 42nd such access
//
// Positions and indexes are 0-based throughout; Rank counts over the
// half-open window [0, pos); all range operations use half-open [l, r).
// Out-of-range positions panic, mirroring slice indexing; absence is
// reported through ok-style returns, never panics.
//
// The implementation is stdlib-only. Internal packages implement every
// substrate from scratch: RRR bitvectors, the §4.1 append-only bitvector,
// the §4.2 dynamic RLE+γ bitvector, dynamic Patricia tries, Elias-Fano
// partial sums, Elias γ/δ codes, and DFUDS succinct trees. See DESIGN.md
// for the substrate inventory, the substitution table, the wire-format
// reference, and the index of the cmd/wtbench experiments that reproduce
// every bound in the paper's Table 1.
package wavelettrie
