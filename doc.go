// Package wavelettrie is a Go implementation of the Wavelet Trie of
// Roberto Grossi and Giuseppe Ottaviano, "The Wavelet Trie: Maintaining
// an Indexed Sequence of Strings in Compressed Space" (PODS 2012,
// arXiv:1204.3581) — a compressed indexed sequence of strings.
//
// # The problem
//
// An indexed sequence of strings stores a sequence S = ⟨s₀,…,s_{n-1}⟩
// (strings repeat; order matters) and supports, beyond positional access:
//
//	Access(pos)            the string at position pos
//	Rank(s, pos)           occurrences of s before position pos
//	Select(s, idx)         position of the idx-th occurrence of s
//	RankPrefix(p, pos)     elements before pos having prefix p
//	SelectPrefix(p, idx)   position of the idx-th element with prefix p
//
// plus range analytics (distinct values, range majority, top-k, threshold
// counting) and, in the dynamic variants, Insert/Append/Delete — all in
// compressed space close to the information-theoretic lower bound
// LB(S) = LT(Sset) + nH₀(S).
//
// # The three variants
//
//   - Static: immutable, queries in O(|s|+h_s), space LB + o(h̃n).
//   - AppendOnly: additionally Append in O(|s|+h_s) — index a log on the
//     fly; space LB + PT + o(h̃n).
//   - Dynamic: arbitrary Insert and Delete in O(|s|+h_s·log n), with a
//     fully dynamic alphabet (unseen strings simply work); space
//     LB + PT + O(nH₀).
//
// Here h_s is the number of Patricia-trie nodes on s's path (h_s ≤ |s|
// bits, typically far smaller thanks to path compression), h̃ the average
// over the sequence, and PT the Patricia trie pointer overhead.
//
// Numeric sequences over a bounded universe are served by Numeric, the §6
// randomized Wavelet Tree, whose height depends only on the working
// alphabet (w.h.p.), not the universe.
//
// # Example
//
//	wt := wavelettrie.NewAppendOnly()
//	for _, url := range accessLog {
//		wt.Append(url)
//	}
//	hits := wt.RankPrefix("host01.example/", wt.Len()) // prefix count
//	pos, ok := wt.SelectPrefix("host01.example/", 41)  // 42nd such access
//
// Positions and indexes are 0-based throughout; Rank counts over the
// half-open window [0, pos); all range operations use half-open [l, r).
// Out-of-range positions panic, mirroring slice indexing; absence is
// reported through ok-style returns, never panics.
//
// The implementation is stdlib-only. Internal packages implement every
// substrate from scratch: RRR bitvectors, the §4.1 append-only bitvector,
// the §4.2 dynamic RLE+γ bitvector, dynamic Patricia tries, Elias-Fano
// partial sums, Elias γ/δ codes, and DFUDS succinct trees. See DESIGN.md
// for the inventory and EXPERIMENTS.md for the reproduction of every
// bound in the paper's Table 1.
package wavelettrie
