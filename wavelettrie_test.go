package wavelettrie

import (
	"math/rand"
	"testing"

	"repro/internal/seqstore/flat"
	"repro/internal/workload"
)

func TestPublicAPIAgainstOracle(t *testing.T) {
	seq := workload.URLLog(400, 1, workload.DefaultURLConfig())
	o := flat.FromSlice(seq)
	r := rand.New(rand.NewSource(140))
	apis := map[string]interface {
		Len() int
		Access(int) string
		Rank(string, int) int
		Select(string, int) (int, bool)
		RankPrefix(string, int) int
		SelectPrefix(string, int) (int, bool)
		Count(string) int
		CountPrefix(string) int
	}{
		"static":     NewStatic(seq),
		"appendonly": NewAppendOnlyFrom(seq),
		"dynamic":    NewDynamicFrom(seq),
	}
	probes := append(workload.Distinct(seq)[:8],
		"host00.example", "host00", "absent", "", "host01.example/a0")
	for name, w := range apis {
		if w.Len() != len(seq) {
			t.Fatalf("%s: Len", name)
		}
		for i := 0; i < len(seq); i += 3 {
			if w.Access(i) != o.Access(i) {
				t.Fatalf("%s: Access(%d)", name, i)
			}
		}
		for _, p := range probes {
			pos := r.Intn(len(seq) + 1)
			if got, want := w.Rank(p, pos), o.Rank(p, pos); got != want {
				t.Fatalf("%s: Rank(%q,%d)=%d want %d", name, p, pos, got, want)
			}
			if got, want := w.RankPrefix(p, pos), o.RankPrefix(p, pos); got != want {
				t.Fatalf("%s: RankPrefix(%q,%d)=%d want %d", name, p, pos, got, want)
			}
			if got, want := w.Count(p), o.Rank(p, len(seq)); got != want {
				t.Fatalf("%s: Count(%q)=%d want %d", name, p, got, want)
			}
			if got, want := w.CountPrefix(p), o.RankPrefix(p, len(seq)); got != want {
				t.Fatalf("%s: CountPrefix(%q)=%d want %d", name, p, got, want)
			}
			total := o.Rank(p, len(seq))
			for idx := 0; idx <= total; idx += 1 + total/4 {
				gp, gok := w.Select(p, idx)
				wp, wok := o.Select(p, idx)
				if gok != wok || (gok && gp != wp) {
					t.Fatalf("%s: Select(%q,%d)", name, p, idx)
				}
			}
			totalP := o.RankPrefix(p, len(seq))
			for idx := 0; idx <= totalP; idx += 1 + totalP/4 {
				gp, gok := w.SelectPrefix(p, idx)
				wp, wok := o.SelectPrefix(p, idx)
				if gok != wok || (gok && gp != wp) {
					t.Fatalf("%s: SelectPrefix(%q,%d)=(%d,%v) want (%d,%v)", name, p, idx, gp, gok, wp, wok)
				}
			}
		}
	}
}

func TestDynamicLifecycle(t *testing.T) {
	d := NewDynamic()
	d.Append("b")
	d.Insert("a", 0)
	d.Insert("c", 2)
	d.Insert("b", 1)
	// Sequence: a b b c
	if got := d.Slice(0, 4); got[0] != "a" || got[1] != "b" || got[2] != "b" || got[3] != "c" {
		t.Fatalf("Slice: %v", got)
	}
	if s := d.Delete(2); s != "b" {
		t.Fatalf("Delete(2)=%q", s)
	}
	if d.Len() != 3 || d.AlphabetSize() != 3 {
		t.Fatalf("Len=%d sigma=%d", d.Len(), d.AlphabetSize())
	}
	if s := d.Delete(2); s != "c" {
		t.Fatalf("Delete(2)=%q", s)
	}
	if d.AlphabetSize() != 2 {
		t.Fatalf("alphabet should shrink, got %d", d.AlphabetSize())
	}
}

func TestRangeAnalytics(t *testing.T) {
	seq := []string{"x", "y", "x", "x", "z", "x", "y"}
	for name, w := range map[string]*queries{
		"static":  &NewStatic(seq).queries,
		"dynamic": &NewDynamicFrom(seq).queries,
	} {
		d := w.DistinctInRange(0, 7)
		if len(d) != 3 {
			t.Fatalf("%s: distinct %v", name, d)
		}
		// Lexicographic: x, y, z.
		if d[0].Value != "x" || d[0].Count != 4 || d[2].Value != "z" {
			t.Fatalf("%s: distinct %v", name, d)
		}
		if m, ok := w.RangeMajority(0, 7); !ok || m != "x" {
			t.Fatalf("%s: majority %q %v", name, m, ok)
		}
		if _, ok := w.RangeMajority(0, 2); ok {
			t.Fatalf("%s: no majority expected", name)
		}
		th := w.RangeThreshold(0, 7, 2)
		if len(th) != 2 { // x(4), y(2)
			t.Fatalf("%s: threshold %v", name, th)
		}
		top := w.TopK(0, 7, 2)
		if len(top) != 2 || top[0].Value != "x" || top[1].Value != "y" {
			t.Fatalf("%s: topk %v", name, top)
		}
		var seen []string
		w.Enumerate(1, 4, func(pos int, s string) bool {
			seen = append(seen, s)
			return true
		})
		if len(seen) != 3 || seen[0] != "y" || seen[1] != "x" || seen[2] != "x" {
			t.Fatalf("%s: enumerate %v", name, seen)
		}
	}
}

func TestBinaryContent(t *testing.T) {
	// Strings with NUL and 0xFF bytes must work (the binarization is
	// byte-transparent).
	seq := []string{"\x00", "\x00\xff", "a\x00b", "", "\xff"}
	d := NewDynamicFrom(seq)
	for i, s := range seq {
		if d.Access(i) != s {
			t.Fatalf("Access(%d) mismatch for binary content", i)
		}
	}
	if d.Count("\x00") != 1 || d.CountPrefix("\x00") != 2 {
		t.Fatal("binary prefix counting broken")
	}
}

func TestSpaceAccessors(t *testing.T) {
	seq := workload.ZipfStrings(5000, 64, 1.4, 2)
	st := NewStatic(seq)
	if st.SizeBits() <= 0 || st.SuccinctSizeBits() <= 0 {
		t.Fatal("size accessors must be positive")
	}
	if st.SuccinctSizeBits() >= st.SizeBits() {
		t.Fatalf("succinct %d should be below pointer-based %d",
			st.SuccinctSizeBits(), st.SizeBits())
	}
	if st.AvgHeight() <= 0 || st.Height() < int(st.AvgHeight()) {
		t.Fatal("height accessors inconsistent")
	}
	d := NewDynamicFrom(seq)
	if d.EncodedBitvectorBits() <= 0 || d.SizeBits() <= d.EncodedBitvectorBits() {
		t.Fatal("dynamic size accessors inconsistent")
	}
}

func TestNumericPublic(t *testing.T) {
	nq := NewNumeric(64, 11)
	vals := workload.NumericColumn(800, 32, 3)
	for _, v := range vals {
		nq.Append(v)
	}
	if nq.Len() != 800 {
		t.Fatal("Len")
	}
	for i := 0; i < 800; i += 7 {
		if nq.Access(i) != vals[i] {
			t.Fatalf("Access(%d)", i)
		}
	}
	x := vals[0]
	count := 0
	for _, v := range vals {
		if v == x {
			count++
		}
	}
	if nq.Rank(x, 800) != count {
		t.Fatal("Rank")
	}
	if pos, ok := nq.Select(x, count-1); !ok || vals[pos] != x {
		t.Fatal("Select")
	}
	if nq.Height() > 64 {
		t.Fatal("height exceeds universe")
	}
	got := nq.Delete(0)
	if got != vals[0] || nq.Len() != 799 {
		t.Fatal("Delete")
	}
}
