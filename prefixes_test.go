package wavelettrie

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/workload"
)

// refPrefixGroups computes the DistinctPrefixes result by brute force.
func refPrefixGroups(seq []string, l, r, k int) []Distinct {
	m := map[string]int{}
	for _, s := range seq[l:r] {
		key := s
		if len(key) > k {
			key = key[:k]
		}
		m[key]++
	}
	keys := make([]string, 0, len(m))
	for kk := range m {
		keys = append(keys, kk)
	}
	sort.Strings(keys)
	out := make([]Distinct, len(keys))
	for i, kk := range keys {
		out[i] = Distinct{Value: kk, Count: m[kk]}
	}
	return out
}

func TestDistinctPrefixesAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(170))
	seq := workload.URLLog(800, 13, workload.DefaultURLConfig())
	// Mix in short strings to exercise the short-string grouping path.
	for i := 0; i < 50; i++ {
		seq = append(seq, []string{"a", "ab", "h", "host"}[r.Intn(4)])
	}
	for name, w := range map[string]interface {
		DistinctPrefixes(int, int, int) []Distinct
	}{
		"static":     NewStatic(seq),
		"appendonly": NewAppendOnlyFrom(seq),
		"dynamic":    NewDynamicFrom(seq),
	} {
		for _, k := range []int{0, 1, 4, 14, 100} {
			for trial := 0; trial < 10; trial++ {
				l := r.Intn(len(seq) + 1)
				rr := l + r.Intn(len(seq)-l+1)
				got := w.DistinctPrefixes(l, rr, k)
				want := refPrefixGroups(seq, l, rr, k)
				if len(got) != len(want) {
					t.Fatalf("%s k=%d [%d,%d): %d groups want %d\ngot %v\nwant %v",
						name, k, l, rr, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s k=%d group %d: %v want %v", name, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestDistinctPrefixesHostGrouping(t *testing.T) {
	// The motivating query: distinct hostnames in a window. Hostnames here
	// are fixed-width ("hostNN.example" = 14 bytes), so prefixLen 14
	// groups by host.
	seq := workload.URLLog(2000, 14, workload.DefaultURLConfig())
	w := NewAppendOnlyFrom(seq)
	groups := w.DistinctPrefixes(500, 1500, 14)
	total := 0
	seen := map[string]bool{}
	for _, g := range groups {
		if seen[g.Value] {
			t.Fatalf("duplicate group %q", g.Value)
		}
		seen[g.Value] = true
		total += g.Count
	}
	if total != 1000 {
		t.Fatalf("groups cover %d of 1000 positions", total)
	}
	// Cross-check one group against CountPrefix.
	g := groups[0]
	if want := w.RankPrefix(g.Value, 1500) - w.RankPrefix(g.Value, 500); g.Count != want {
		t.Fatalf("group %q count %d, RankPrefix window says %d", g.Value, g.Count, want)
	}
}
