// Example serve: the store as a network service. Starts a wtserve-style
// server in-process over a fresh sharded store, then drives it like a
// fleet of remote clients would: concurrent batched ingest through the
// group-commit write path, point queries through the result cache, a
// pinned-snapshot scan that concurrent appends cannot shift, and a
// graceful drain. The same server is what `wtserve -dir` deploys as a
// standalone binary (with the HTTP gateway for curl).
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"

	"repro/server"
	"repro/store"
)

func main() {
	dir, err := os.MkdirTemp("", "wt-serve-example-*")
	check(err)
	defer os.RemoveAll(dir)

	ss, err := store.OpenSharded(dir, &store.ShardedOptions{Shards: 2})
	check(err)
	defer ss.Close()

	srv := server.New(server.ForSharded(ss), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go srv.Serve(l)
	addr := l.Addr().String()
	fmt.Printf("server: sharded store ×2 on %s\n\n", addr)

	// Concurrent clients ingest with batched appends. Every batch is one
	// round trip; server-side, batches that arrive together are folded
	// into one group commit — one lock, one WAL write, one fsync.
	const clients, batches, batchSize = 4, 25, 20
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			check(err)
			defer c.Close()
			for b := 0; b < batches; b++ {
				batch := make([]string, batchSize)
				for k := range batch {
					batch[k] = fmt.Sprintf("user%d/event/%04d", g, b*batchSize+k)
				}
				check(c.AppendBatch(batch))
			}
		}(g)
	}
	wg.Wait()

	c, err := server.Dial(addr)
	check(err)
	defer c.Close()

	st, err := c.Stats()
	check(err)
	m := srv.Metrics()
	fmt.Printf("ingested %d events from %d clients\n", st.Len, clients)
	fmt.Printf("group commit: %d appends in %d commits (%.1f per WAL write)\n\n",
		m.BatchedAppends.Load(), m.Batches.Load(),
		float64(m.BatchedAppends.Load())/float64(max(1, m.Batches.Load())))

	// Point queries: the first probe pays the trie walk, repeats hit the
	// fingerprint-keyed cache until the next write invalidates for free.
	probe := "user1/event/0000"
	n, err := c.Count(probe)
	check(err)
	for i := 0; i < 99; i++ {
		_, err = c.Count(probe)
		check(err)
	}
	fmt.Printf("Count(%q) = %d  (cache: %d hits / %d misses)\n",
		probe, n, m.CacheHits.Load(), m.CacheMisses.Load())
	u2, err := c.CountPrefix("user2/")
	check(err)
	fmt.Printf("CountPrefix(\"user2/\") = %d\n\n", u2)

	// A scan pins one snapshot across round trips: the append below is
	// invisible to it, visible to the next one.
	sawDuring := 0
	check(c.Scan(0, -1, 512, func(pos int, v string) bool {
		if sawDuring == 0 {
			check(c.Append("intruder/mid-scan"))
		}
		sawDuring++
		return true
	}))
	after, err := c.Stats()
	check(err)
	fmt.Printf("scan saw %d events (pinned snapshot); store now holds %d\n", sawDuring, after.Len)

	check(srv.Shutdown(context.Background()))
	fmt.Println("drained cleanly")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve example:", err)
		os.Exit(1)
	}
}
