// Numeric demonstrates §6 of the paper: maintaining a dynamic sequence of
// 64-bit integers with a Wavelet Tree whose height tracks the *working
// alphabet* |Σ| rather than the universe u = 2^64, thanks to the
// multiplicative-hash permutation — no a-priori alphabet, no rebalancing.
//
// It also shows why hashing matters: the generated values are clustered
// (consecutive integers around a random base), the adversarial pattern
// for an unhashed binary trie.
//
// Usage: numeric [-n 100000] [-sigma 1024] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	wavelettrie "repro"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 100000, "sequence length")
	sigma := flag.Int("sigma", 1024, "working alphabet size")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	vals := workload.NumericColumn(*n, *sigma, *seed)
	nq := wavelettrie.NewNumeric(64, *seed)

	start := time.Now()
	for _, v := range vals {
		nq.Append(v)
	}
	el := time.Since(start)

	bound := 3 * math.Log2(float64(nq.AlphabetSize())) // Thm 6.2 with α=1
	fmt.Printf("Appended %d values in %v (%.0f ops/s)\n",
		*n, el.Round(time.Millisecond), float64(*n)/el.Seconds())
	fmt.Printf("|Σ| = %d working values inside a 2^64 universe\n", nq.AlphabetSize())
	fmt.Printf("trie height = %d  (Theorem 6.2 bound (α+2)·log|Σ| = %.0f, log u = 64)\n",
		nq.Height(), bound)
	fmt.Printf("space: %.1f bits/element (raw u64 would be 64)\n\n",
		float64(nq.SizeBits())/float64(*n))

	// Standard sequence queries on numbers.
	x := vals[0]
	fmt.Printf("Access(0) = %d\n", nq.Access(0))
	fmt.Printf("Rank(%d, n) = %d occurrences\n", x, nq.Rank(x, nq.Len()))
	if pos, ok := nq.Select(x, 0); ok {
		fmt.Printf("first occurrence of %d at position %d\n", x, pos)
	}

	// Dynamic edits: delete the first 10 elements, insert replacements.
	for i := 0; i < 10; i++ {
		nq.Delete(0)
	}
	for i := 0; i < 10; i++ {
		nq.Insert(x+uint64(i), i)
	}
	fmt.Printf("after churn: n = %d, |Σ| = %d, height = %d\n",
		nq.Len(), nq.AlphabetSize(), nq.Height())

	// Range analytics: majority in a window.
	if m, ok := nq.RangeMajority(0, 1000); ok {
		fmt.Printf("majority of first 1000: %d\n", m)
	} else {
		fmt.Println("no majority in first 1000")
	}
	counts := nq.DistinctInRange(0, 200)
	fmt.Printf("distinct values in [0,200): %d\n", len(counts))

	// Snapshot lifecycle: the hash multiplier travels with the snapshot,
	// so a reopened tree keeps answering (and mutating) identically.
	data, err := nq.MarshalBinary()
	if err != nil {
		panic(err)
	}
	start = time.Now()
	reopened, err := wavelettrie.LoadNumeric(data)
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshot: %d KiB, reopened in %v; Rank(%d) = %d (unchanged)\n",
		len(data)/1024, time.Since(start).Round(time.Millisecond),
		x, reopened.Rank(x, reopened.Len()))
}
