// Accesslog replays the paper's motivating scenario (§1): a URL access
// log is indexed on the fly with the append-only Wavelet Trie, then
// interrogated with time-windowed prefix analytics — "what has been the
// most accessed domain during winter vacation?". The analytics are
// programmed against wavelettrie.RangeIndex, so the same report runs on
// the live index and on a snapshot reopened from its serialized form —
// the checkpoint-and-serve deployment shape.
//
// Usage: accesslog [-n 200000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"time"

	wavelettrie "repro"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 200000, "log length")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	fmt.Printf("Generating %d log lines (Zipf hosts, hierarchical paths)...\n", *n)
	log := workload.URLLog(*n, *seed, workload.DefaultURLConfig())

	// Index the stream as it "arrives".
	wt := wavelettrie.NewAppendOnly()
	start := time.Now()
	for _, line := range log {
		wt.Append(line)
	}
	el := time.Since(start)
	fmt.Printf("Indexed in %v (%.0f appends/s), %d distinct URLs, h̃ = %.1f\n",
		el.Round(time.Millisecond), float64(*n)/el.Seconds(), wt.AlphabetSize(), wt.AvgHeight())
	fmt.Printf("Space: %.1f bits/line (raw input avg %.1f bytes/line)\n\n",
		float64(wt.SizeBits())/float64(*n), avgLen(log))

	// "Winter vacation" = the middle 20% of the time axis.
	report(wt, *n*2/5, *n*3/5)

	// Checkpoint the live index and reopen it — the serving process after
	// a restart, or a replica that received the snapshot over the wire.
	start = time.Now()
	snap, err := wt.MarshalBinary()
	if err != nil {
		panic(err)
	}
	marshalT := time.Since(start)
	start = time.Now()
	served, err := wavelettrie.LoadAppendOnly(snap)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nCheckpointed %d KiB in %v, reopened in %v (no rebuild); same report:\n",
		len(snap)/1024, marshalT.Round(time.Millisecond),
		time.Since(start).Round(time.Millisecond))
	report(served, *n*2/5, *n*3/5)
}

// report runs the windowed analytics against any index variant.
func report(wt wavelettrie.RangeIndex, lo, hi int) {
	fmt.Printf("Window [%d, %d):\n", lo, hi)

	// Most accessed host in the window: top-k via the trie.
	fmt.Println("  top 3 URLs:")
	for _, d := range wt.TopK(lo, hi, 3) {
		fmt.Printf("    %-28s ×%d\n", d.Value, d.Count)
	}

	// Per-domain traffic via RankPrefix — no scan of the window.
	for _, host := range []string{"host00.example", "host01.example", "host02.example"} {
		inWindow := wt.RankPrefix(host, hi) - wt.RankPrefix(host, lo)
		total := wt.CountPrefix(host)
		fmt.Printf("  %s: %d hits in window (of %d total)\n", host, inWindow, total)
	}

	// Majority check: is any single URL more than half the window?
	if m, ok := wt.RangeMajority(lo, hi); ok {
		fmt.Printf("  majority URL: %s\n", m)
	} else {
		fmt.Println("  no single URL is a strict majority of the window")
	}

	// Locate the 100th access to the hottest host, then replay its
	// neighbourhood with the sequential iterator.
	if pos, ok := wt.SelectPrefix("host00.example", 99); ok {
		fmt.Printf("  100th access to host00.example was at position %d; context:\n", pos)
		from := pos - 2
		if from < 0 {
			from = 0
		}
		to := pos + 3
		if to > wt.Len() {
			to = wt.Len()
		}
		wt.Enumerate(from, to, func(p int, s string) bool {
			marker := "  "
			if p == pos {
				marker = "->"
			}
			fmt.Printf("    %s %7d %s\n", marker, p, s)
			return true
		})
	}
}

func avgLen(ss []string) float64 {
	t := 0
	for _, s := range ss {
		t += len(s)
	}
	return float64(t) / float64(len(ss))
}
