// Quickstart: the one-screen tour of the Wavelet Trie public API —
// building a sequence, positional and occurrence queries, prefix
// queries, the live space accounting, and the snapshot lifecycle
// (MarshalBinary → file → LoadAppendOnly).
package main

import (
	"fmt"
	"os"
	"path/filepath"

	wavelettrie "repro"
)

func main() {
	// A tiny "access log": order is time order, values repeat.
	log := []string{
		"site.example/home",
		"site.example/cart",
		"site.example/home",
		"api.example/v1/users",
		"site.example/home",
		"api.example/v1/items",
		"api.example/v1/users",
	}

	wt := wavelettrie.NewAppendOnly()
	for _, url := range log {
		wt.Append(url) // O(|s| + h_s) per append — index the log on the fly
	}

	fmt.Printf("n = %d elements, |Sset| = %d distinct\n", wt.Len(), wt.AlphabetSize())

	// Access: what was the 4th request?
	fmt.Printf("Access(3)        = %s\n", wt.Access(3))

	// Rank: how many times had /home been hit before position 5?
	fmt.Printf("Rank(home, 5)    = %d\n", wt.Rank("site.example/home", 5))

	// Select: when was the 3rd /home hit? (0-based idx 2)
	if pos, ok := wt.Select("site.example/home", 2); ok {
		fmt.Printf("Select(home, 2)  = position %d\n", pos)
	}

	// Prefix queries — the operations plain wavelet trees cannot do with
	// a dynamic alphabet: count and locate by URL prefix.
	fmt.Printf("CountPrefix(api.example/)    = %d\n", wt.CountPrefix("api.example/"))
	if pos, ok := wt.SelectPrefix("api.example/", 1); ok {
		fmt.Printf("SelectPrefix(api.example/,1) = position %d (%s)\n", pos, wt.Access(pos))
	}

	// Range analytics (§5 of the paper).
	fmt.Println("Distinct values in window [1,6):")
	for _, d := range wt.DistinctInRange(1, 6) {
		fmt.Printf("  %-22s ×%d\n", d.Value, d.Count)
	}
	if m, ok := wt.RangeMajority(0, 5); ok {
		fmt.Printf("Majority of first 5 requests: %s\n", m)
	}

	// Space accounting: the structure is compressed.
	fmt.Printf("Footprint: %d bits (%.1f bits/element), h̃ = %.2f\n",
		wt.SizeBits(), float64(wt.SizeBits())/float64(wt.Len()), wt.AvgHeight())

	// Snapshot lifecycle: checkpoint the live index to disk, reopen it in
	// milliseconds (no O(n·|s|) rebuild), and keep appending. Every
	// variant serializes the same way; wavelettrie.Load sniffs the kind.
	path := filepath.Join(os.TempDir(), "quickstart.wt")
	data, err := wt.MarshalBinary()
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		panic(err)
	}
	data, err = os.ReadFile(path) // a later process picks the snapshot up
	if err != nil {
		panic(err)
	}
	reopened, err := wavelettrie.LoadAppendOnly(data)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Snapshot: %d bytes on disk; reopened with n = %d\n", len(data), reopened.Len())
	reopened.Append("site.example/checkout") // appends resume seamlessly
	fmt.Printf("After resumed append: n = %d, CountPrefix(site.example/) = %d\n",
		reopened.Len(), reopened.CountPrefix("site.example/"))
	os.Remove(path)
}
