// Columnstore models the database use-case of §1: a column of a relation
// stored as a fully-dynamic Wavelet Trie. Rows are inserted and deleted
// at arbitrary positions, the value domain is never declared up front,
// and the column supports the query mix a column-oriented engine needs —
// point lookups, predicate counts, occurrence positioning and grouped
// statistics — all on the compressed representation.
//
// Usage: columnstore [-rows 50000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	wavelettrie "repro"
	"repro/internal/workload"
)

func main() {
	rows := flag.Int("rows", 50000, "initial row count")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	// A "country" column: low cardinality, heavily skewed — the classic
	// compressible column.
	col := wavelettrie.NewDynamic()
	values := workload.ZipfStrings(*rows, 120, 1.3, *seed)
	start := time.Now()
	for _, v := range values {
		col.Append(v)
	}
	fmt.Printf("Loaded %d rows in %v; %d distinct values; %.1f bits/row\n",
		col.Len(), time.Since(start).Round(time.Millisecond),
		col.AlphabetSize(), float64(col.SizeBits())/float64(col.Len()))

	// OLTP-style churn: inserts and deletes at arbitrary row positions.
	// New values (never seen at load time) appear mid-stream.
	r := rand.New(rand.NewSource(*seed + 1))
	churn := 5000
	start = time.Now()
	for i := 0; i < churn; i++ {
		switch r.Intn(3) {
		case 0:
			col.Delete(r.Intn(col.Len()))
		case 1:
			col.Insert(fmt.Sprintf("v%d", r.Intn(200)), r.Intn(col.Len()+1))
		default:
			// A genuinely new value — frozen-alphabet structures would
			// need a rebuild here.
			col.Insert(fmt.Sprintf("new-%d", i), r.Intn(col.Len()+1))
		}
	}
	fmt.Printf("Applied %d mixed inserts/deletes in %v; now %d rows, %d distinct\n\n",
		churn, time.Since(start).Round(time.Millisecond), col.Len(), col.AlphabetSize())

	// The read-side query mix is programmed against the Index interface,
	// so it serves equally from the live column or a reopened checkpoint.
	queryMix(col)

	// Checkpoint the column (e.g. at segment-flush time) and reopen it —
	// the same query mix answers identically, and OLTP churn resumes.
	data, err := col.MarshalBinary()
	if err != nil {
		panic(err)
	}
	start = time.Now()
	reopened, err := wavelettrie.LoadDynamic(data)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nCheckpoint: %d KiB; reopened in %v; same query mix:\n",
		len(data)/1024, time.Since(start).Round(time.Millisecond))
	queryMix(reopened)
	reopened.Insert("post-restore", 0)
	fmt.Printf("churn resumed after restore: row 0 = %q\n", reopened.Access(0))
}

// queryMix runs the column-engine query shapes against any variant.
func queryMix(col wavelettrie.RangeIndex) {
	// Point lookup: SELECT value WHERE rowid = N/2.
	rowid := col.Len() / 2
	fmt.Printf("row %d = %q\n", rowid, col.Access(rowid))

	// Predicate count: SELECT COUNT(*) WHERE value = 'v0'.
	fmt.Printf("COUNT(value='v0') = %d\n", col.Count("v0"))

	// Positioning: the 10th row with value v1 (for a cursor/index scan).
	if pos, ok := col.Select("v1", 9); ok {
		fmt.Printf("10th 'v1' row is rowid %d\n", pos)
	}

	// Grouped statistics over a row range: GROUP BY value in the middle
	// fifth of the table — served by DistinctInRange without scanning.
	lo, hi := col.Len()*2/5, col.Len()*3/5
	fmt.Printf("top groups in rows [%d,%d):\n", lo, hi)
	for _, d := range col.TopK(lo, hi, 5) {
		fmt.Printf("  %-10s ×%d\n", d.Value, d.Count)
	}

	// Values occurring ≥ 50 times in the range (HAVING COUNT >= 50).
	hot := col.RangeThreshold(lo, hi, 50)
	fmt.Printf("%d values occur ≥50 times in that range\n", len(hot))

	// Snapshot extraction of a row range uses the sequential iterator —
	// one Rank per trie node for the whole range, not per row.
	rows := col.Slice(lo, lo+5)
	fmt.Printf("rows [%d,%d): %v\n", lo, lo+5, rows)
}
