// Socialgraph models the web-graph/social-network scenario of §1: edges
// of a graph arrive as a time-ordered stream of "u->v" strings. Because
// the Wavelet Trie supports prefix operations over positional ranges, it
// can answer "how did the adjacency list of u change during this time
// window?" — producing snapshots on the fly without storing per-window
// copies.
//
// Usage: socialgraph [-edges 100000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"time"

	wavelettrie "repro"
	"repro/internal/workload"
)

func main() {
	edges := flag.Int("edges", 100000, "number of edge events")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	stream := workload.EdgeStream(*edges, 400, *seed)
	wt := wavelettrie.NewAppendOnly()
	start := time.Now()
	for _, e := range stream {
		wt.Append(e)
	}
	fmt.Printf("Ingested %d edge events in %v; %d distinct edges; %.1f bits/event\n\n",
		wt.Len(), time.Since(start).Round(time.Millisecond),
		wt.AlphabetSize(), float64(wt.SizeBits())/float64(wt.Len()))

	// The "winter vacation" window: the middle fifth of the stream.
	lo, hi := *edges*2/5, *edges*3/5

	// Out-degree activity of user0001 in the window: every edge with
	// source prefix "user0001->".
	src := "user0001->"
	inWindow := wt.RankPrefix(src, hi) - wt.RankPrefix(src, lo)
	fmt.Printf("user0001 created %d links in window [%d,%d) (of %d ever)\n",
		inWindow, lo, hi, wt.CountPrefix(src))

	// Snapshot of user0001's new neighbours in the window: distinct
	// targets, via the prefix-restricted distinct-values traversal.
	fmt.Println("distinct links from user0001 in the window:")
	shown := 0
	for _, d := range wt.DistinctInRange(lo, hi) {
		if len(d.Value) >= len(src) && d.Value[:len(src)] == src {
			fmt.Printf("  %-24s ×%d\n", d.Value, d.Count)
			shown++
			if shown == 8 {
				break
			}
		}
	}
	if shown == 0 {
		fmt.Println("  (none)")
	}

	// When did user0001 first link to anyone? SelectPrefix(…, 0).
	if pos, ok := wt.SelectPrefix(src, 0); ok {
		fmt.Printf("first link by user0001: event #%d = %s\n", pos, wt.Access(pos))
	}

	// Hot pairs across the whole history.
	fmt.Println("\nmost repeated edges overall:")
	for _, d := range wt.TopK(0, wt.Len(), 5) {
		fmt.Printf("  %-24s ×%d\n", d.Value, d.Count)
	}

	// Compare two windows: did the dominant edge change? ("how did
	// friendship links change during winter vacation?")
	w1 := wt.TopK(0, lo, 1)
	w2 := wt.TopK(lo, hi, 1)
	if len(w1) > 0 && len(w2) > 0 {
		fmt.Printf("\nhottest edge before window: %s (×%d)\n", w1[0].Value, w1[0].Count)
		fmt.Printf("hottest edge inside window: %s (×%d)\n", w2[0].Value, w2[0].Count)
	}
}
