// Store lifecycle: the durable, concurrently readable face of the
// Wavelet Trie. An access log is appended into a crash-recoverable
// log-structured store — WAL + memtable in front, frozen generations
// behind — then the process "crashes" mid-append (a torn record is
// forged at the WAL tail) and the store is reopened: every acknowledged
// write survives, the torn tail is truncated cleanly, and a snapshot
// taken before more writes keeps serving its consistent view.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/store"
)

func main() {
	dir, err := os.MkdirTemp("", "wtstore-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Day one: index requests as they arrive. Each Append is written to
	// the write-ahead log before it is acknowledged.
	db, err := store.Open(dir, nil)
	if err != nil {
		panic(err)
	}
	day1 := []string{
		"site.example/home",
		"site.example/cart",
		"site.example/home",
		"api.example/v1/users",
		"site.example/home",
	}
	for _, url := range day1 {
		if err := db.Append(url); err != nil {
			panic(err)
		}
	}
	// Flush seals the memtable into an immutable frozen generation (the
	// paper's §3 succinct encoding on disk) and retires its WAL.
	if err := db.Flush(); err != nil {
		panic(err)
	}
	// Day two arrives; these live in the new WAL + memtable only.
	day2 := []string{"api.example/v1/items", "api.example/v1/users"}
	for _, url := range day2 {
		if err := db.Append(url); err != nil {
			panic(err)
		}
	}
	fmt.Printf("before crash: n=%d, generations=%d, memtable=%d\n",
		db.Len(), len(db.Generations()), db.MemLen())
	if err := db.Close(); err != nil {
		panic(err)
	}

	// CRASH. The process dies mid-append: forge a torn record — a length
	// prefix promising more bytes than ever hit the disk — at the tail of
	// the current WAL, exactly what a power cut can leave behind.
	tearWAL(dir)

	// Reopen: the generation loads from its snapshot, the WAL tail
	// replays, and the torn record is truncated — never replayed, never
	// a panic.
	db2, err := store.Open(dir, nil)
	if err != nil {
		panic(err)
	}
	defer db2.Close()
	fmt.Printf("after recovery: n=%d (all %d acknowledged writes intact)\n",
		db2.Len(), len(day1)+len(day2))
	fmt.Printf("Count(site.example/home)     = %d\n", db2.Count("site.example/home"))
	fmt.Printf("CountPrefix(api.example/)    = %d\n", db2.CountPrefix("api.example/"))

	// Snapshot isolation: a reader's view is pinned while writers move on.
	snap := db2.Snapshot()
	for _, url := range []string{"cdn.example/a.js", "cdn.example/b.css"} {
		if err := db2.Append(url); err != nil {
			panic(err)
		}
	}
	fmt.Printf("snapshot still sees n=%d while the store grew to n=%d\n",
		snap.Len(), db2.Len())
}

// tearWAL appends half a record to the newest WAL file: a header
// announcing a payload that never made it to disk.
func tearWAL(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		panic(err)
	}
	newest := ""
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".log" && name > newest {
			newest = name
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, newest), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	// u32 length = 100, u32 checksum, then... nothing: the power went out.
	if _, err := f.Write([]byte{100, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
		panic(err)
	}
}
