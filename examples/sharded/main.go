// Sharded store lifecycle: multi-writer scaling with cross-shard
// snapshots. Four concurrent writers append into a hash-partitioned
// store (each shard a full WAL + memtable + generations engine), a
// cross-shard snapshot pins one consistent view of the interleaved
// sequence, then the process "crashes" mid-append — a torn record is
// forged at one shard's WAL tail — and the store is reopened: the
// shards recover in parallel, the ROUTER log plus the WAL sequence
// headers rebuild the global append order, and only the torn record's
// shard loses its unsynced suffix.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/store"
)

func main() {
	dir, err := os.MkdirTemp("", "wtsharded-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	db, err := store.OpenSharded(dir, &store.ShardedOptions{Shards: 4})
	if err != nil {
		panic(err)
	}

	// Four writers ingest concurrently. Appends to different shards
	// proceed in parallel — only same-shard appends share a lock.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				url := fmt.Sprintf("host%02d.example/path/%d", w, i%37)
				if err := db.Append(url); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Flush every shard into a frozen generation, then append a short
	// tail that stays WAL-resident — the mixed layout (generations
	// behind, live WAL records in front) a real crash interrupts.
	if err := db.Flush(); err != nil {
		panic(err)
	}
	for w := 0; w < 4; w++ {
		if err := db.Append(fmt.Sprintf("host%02d.example/tail", w)); err != nil {
			panic(err)
		}
	}

	snap := db.Snapshot()
	fmt.Printf("before crash: n=%d over %d shards (per shard:", snap.Len(), db.ShardCount())
	for i := 0; i < db.ShardCount(); i++ {
		fmt.Printf(" %d", db.ShardLen(i))
	}
	fmt.Println(")")
	fmt.Printf("CountPrefix(host01.example/) = %d\n", snap.CountPrefix("host01.example/"))
	if err := db.Close(); err != nil {
		panic(err)
	}

	// CRASH: forge a torn record at one shard's WAL tail — a length
	// prefix promising bytes that never reached the disk.
	tearShardWAL(filepath.Join(dir, "shard-001"))

	// Reopen: every shard recovers in parallel; the torn record is
	// truncated, every complete record survives, and the global
	// interleave is rebuilt exactly.
	db2, err := store.OpenSharded(dir, nil) // shard count adopted from SHARDS
	if err != nil {
		panic(err)
	}
	defer db2.Close()
	fmt.Printf("after recovery: n=%d\n", db2.Len())
	fmt.Printf("CountPrefix(host01.example/) = %d\n", db2.CountPrefix("host01.example/"))
	fmt.Printf("Count(host03.example/tail)   = %d\n", db2.Count("host03.example/tail"))

	// Cross-shard order is intact: each writer's appends are still in
	// its program order within the recovered global sequence.
	pos0, _ := db2.Select("host02.example/path/0", 0)
	pos1, _ := db2.Select("host02.example/path/1", 0)
	fmt.Printf("writer 2's first two appends in order: %v\n", pos0 < pos1)
}

// tearShardWAL appends half a record to the newest WAL in a shard
// directory: a header announcing a payload the power cut swallowed.
func tearShardWAL(shardDir string) {
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		panic(err)
	}
	newest := ""
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".log" && name > newest {
			newest = name
		}
	}
	f, err := os.OpenFile(filepath.Join(shardDir, newest), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte{100, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
		panic(err)
	}
}
