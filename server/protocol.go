package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/wire"
)

// The wire protocol is length-prefixed binary frames over a byte
// stream: each message is a u32 little-endian payload length followed
// by the payload. A request payload is an opcode byte and the op's
// arguments; a response payload is a status byte (statusOK/statusErr)
// and the op's results (or the error text). Integers are uvarints,
// strings are uvarint-length-prefixed bytes — the internal/wire raw
// codec. The frame, not the payload, carries versioning: the first
// frame a client sends is a Ping carrying the protocol version, and a
// server that cannot serve it answers with an error.
//
// See DESIGN.md §8 for the full message catalogue.
const (
	// ProtocolVersion is negotiated by the Ping op. Version 2 added the
	// replication ops (OpSubscribe, OpReplWait, OpPromote), the ack
	// sequence number on append responses and the Stats replication
	// fields.
	ProtocolVersion = 2

	// MaxFrame caps a single frame's payload. Anything larger is a
	// corrupt or hostile stream; the connection is closed.
	MaxFrame = 16 << 20

	frameHeaderLen = 4
)

// Opcodes. The zero value is invalid so an empty payload can never
// decode as a request.
const (
	OpPing byte = iota + 1
	OpAppend
	OpAppendBatch
	OpAccess
	OpRank
	OpCount
	OpSelect
	OpRankPrefix
	OpCountPrefix
	OpSelectPrefix
	OpIterate
	OpCursorClose
	OpFlush
	OpCompact
	OpStats
	OpMetrics
	OpIteratePrefix // appended in later revisions: earlier opcodes stay wire-stable
	// Replication (protocol version 2; see DESIGN.md §12): OpSubscribe
	// switches the connection into a WAL-frame stream, OpReplWait blocks
	// until the serving watermark covers a sequence number (read-your-
	// writes), OpPromote turns a follower writable.
	OpSubscribe
	OpReplWait
	OpPromote

	opLimit // one past the last valid opcode
)

// Response status bytes.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// Request is one decoded client request. Which fields are meaningful
// depends on Op:
//
//	OpPing                       Pos = protocol version
//	OpAppend                     Value
//	OpAppendBatch                Values
//	OpAccess                     Pos
//	OpRank, OpRankPrefix         Value, Pos
//	OpCount, OpCountPrefix       Value
//	OpSelect, OpSelectPrefix     Value, Pos (the occurrence index)
//	OpIterate                    Cursor (0 = open), Pos (start), Max
//	OpIteratePrefix              Value (prefix), Pos (match offset), Max
//	OpCursorClose                Cursor
//	OpFlush, OpCompact           —
//	OpStats, OpMetrics           —
//	OpSubscribe                  Value (follower id), Cursor (from seq), Max (1 = bootstrap ok)
//	OpReplWait                   Cursor (seq to cover), Max (timeout ms)
//	OpPromote                    —
type Request struct {
	Op     byte
	Value  string
	Values []string
	Pos    int
	Max    int
	Cursor uint64
}

// EncodeRequest serializes a request payload (without the frame
// header). EncodeRequest and ParseRequest are exact inverses for every
// valid request — the protocol round-trip test pins it, and the fuzzer
// guarantees ParseRequest never panics on anything else.
func EncodeRequest(req Request) []byte {
	w := wire.NewRawWriter()
	w.Byte(req.Op)
	switch req.Op {
	case OpPing:
		w.Uvarint(uint64(req.Pos))
	case OpAppend:
		w.Str(req.Value)
	case OpAppendBatch:
		w.Uvarint(uint64(len(req.Values)))
		for _, v := range req.Values {
			w.Str(v)
		}
	case OpAccess:
		w.Uvarint(uint64(req.Pos))
	case OpRank, OpRankPrefix, OpSelect, OpSelectPrefix:
		w.Str(req.Value)
		w.Uvarint(uint64(req.Pos))
	case OpCount, OpCountPrefix:
		w.Str(req.Value)
	case OpIterate:
		w.Uvarint(req.Cursor)
		w.Uvarint(uint64(req.Pos))
		w.Uvarint(uint64(req.Max))
	case OpIteratePrefix:
		w.Str(req.Value)
		w.Uvarint(uint64(req.Pos))
		w.Uvarint(uint64(req.Max))
	case OpCursorClose:
		w.Uvarint(req.Cursor)
	case OpSubscribe:
		w.Str(req.Value)
		w.Uvarint(req.Cursor)
		w.Uvarint(uint64(req.Max))
	case OpReplWait:
		w.Uvarint(req.Cursor)
		w.Uvarint(uint64(req.Max))
	case OpFlush, OpCompact, OpStats, OpMetrics, OpPromote:
	default:
		panic(fmt.Sprintf("server: encoding unknown opcode %d", req.Op))
	}
	return w.Bytes()
}

// ParseRequest decodes a request payload. Arbitrary input must error,
// never panic — this is the server's trust boundary and it is fuzzed.
func ParseRequest(payload []byte) (Request, error) {
	var req Request
	r := wire.NewRawReader(payload)
	req.Op = r.Byte()
	if req.Op == 0 || req.Op >= opLimit {
		return req, fmt.Errorf("server: unknown opcode %d", req.Op)
	}
	readPos := func() int {
		v := r.Uvarint()
		if v > math.MaxInt64/2 {
			r.Fail("implausible position %d", v)
			return 0
		}
		return int(v)
	}
	switch req.Op {
	case OpPing:
		req.Pos = readPos()
	case OpAppend:
		req.Value = r.Str()
	case OpAppendBatch:
		n := r.Len() // validated against the remaining payload
		req.Values = make([]string, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			req.Values = append(req.Values, r.Str())
		}
	case OpAccess:
		req.Pos = readPos()
	case OpRank, OpRankPrefix, OpSelect, OpSelectPrefix:
		req.Value = r.Str()
		req.Pos = readPos()
	case OpCount, OpCountPrefix:
		req.Value = r.Str()
	case OpIterate:
		req.Cursor = r.Uvarint()
		req.Pos = readPos()
		req.Max = readPos()
	case OpIteratePrefix:
		req.Value = r.Str()
		req.Pos = readPos()
		req.Max = readPos()
	case OpCursorClose:
		req.Cursor = r.Uvarint()
	case OpSubscribe:
		req.Value = r.Str()
		req.Cursor = r.Uvarint()
		req.Max = readPos()
		if req.Max > 1 {
			r.Fail("subscribe bootstrap flag %d not 0 or 1", req.Max)
		}
	case OpReplWait:
		req.Cursor = r.Uvarint()
		req.Max = readPos()
	case OpFlush, OpCompact, OpStats, OpMetrics, OpPromote:
	}
	if err := r.Err(); err != nil {
		return req, err
	}
	if err := r.Done(); err != nil {
		return req, err
	}
	return req, nil
}

// GenStat describes one frozen generation in a Stats reply — the remote
// rendering of store.GenInfo.
type GenStat struct {
	ID         uint64
	Len        int
	SizeBits   int
	FilterBits int
	MinValue   string
	MaxValue   string
}

// Stats is the OpStats reply: the store's shape at the serving
// snapshot, plus enough of the host's runtime shape (GOMAXPROCS,
// NumCPU) for a remote client to judge throughput numbers — a 1-core
// container and a 32-core host answer the same Stats otherwise.
type Stats struct {
	Len        int
	Distinct   int
	Height     int
	SizeBits   int
	MemLen     int
	Shards     int
	GoMaxProcs int
	NumCPU     int
	// Router representation split (sharded backends; zero otherwise):
	// total router footprint in bits and the frozen-vs-live chunk count,
	// so the succinct-router memory win is observable remotely.
	RouterBits         int
	RouterFrozenChunks int
	RouterTailChunks   int
	// Replication (protocol version 2): the serving watermark (the
	// global sequence number new snapshots cover), the primary address
	// this server follows ("" when it is itself a primary), and how many
	// followers are subscribed to it.
	Watermark uint64
	Following string
	Followers int
	Gens      []GenStat
}

func encodeStats(w *wire.Writer, st Stats) {
	w.Uvarint(uint64(st.Len))
	w.Uvarint(uint64(st.Distinct))
	w.Uvarint(uint64(st.Height))
	w.Uvarint(uint64(st.SizeBits))
	w.Uvarint(uint64(st.MemLen))
	w.Uvarint(uint64(st.Shards))
	w.Uvarint(uint64(st.GoMaxProcs))
	w.Uvarint(uint64(st.NumCPU))
	w.Uvarint(uint64(st.RouterBits))
	w.Uvarint(uint64(st.RouterFrozenChunks))
	w.Uvarint(uint64(st.RouterTailChunks))
	w.Uvarint(st.Watermark)
	w.Str(st.Following)
	w.Uvarint(uint64(st.Followers))
	w.Uvarint(uint64(len(st.Gens)))
	for _, g := range st.Gens {
		w.Uvarint(g.ID)
		w.Uvarint(uint64(g.Len))
		w.Uvarint(uint64(g.SizeBits))
		w.Uvarint(uint64(g.FilterBits))
		w.Str(g.MinValue)
		w.Str(g.MaxValue)
	}
}

func parseStats(r *wire.Reader) Stats {
	var st Stats
	st.Len = int(r.Uvarint())
	st.Distinct = int(r.Uvarint())
	st.Height = int(r.Uvarint())
	st.SizeBits = int(r.Uvarint())
	st.MemLen = int(r.Uvarint())
	st.Shards = int(r.Uvarint())
	st.GoMaxProcs = int(r.Uvarint())
	st.NumCPU = int(r.Uvarint())
	st.RouterBits = int(r.Uvarint())
	st.RouterFrozenChunks = int(r.Uvarint())
	st.RouterTailChunks = int(r.Uvarint())
	st.Watermark = r.Uvarint()
	st.Following = r.Str()
	st.Followers = int(r.Uvarint())
	n := r.Len()
	for i := 0; i < n && r.Err() == nil; i++ {
		st.Gens = append(st.Gens, GenStat{
			ID: r.Uvarint(), Len: int(r.Uvarint()),
			SizeBits: int(r.Uvarint()), FilterBits: int(r.Uvarint()),
			MinValue: r.Str(), MaxValue: r.Str(),
		})
	}
	return st
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame, rejecting implausible
// lengths before allocating.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
