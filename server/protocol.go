package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/wire"
	"repro/store"
)

// The wire protocol is length-prefixed binary frames over a byte
// stream: each message is a u32 little-endian payload length followed
// by the payload. A request payload is an opcode byte and the op's
// arguments; a response payload is a status byte (statusOK/statusErr)
// and the op's results (or the error text). Integers are uvarints,
// strings are uvarint-length-prefixed bytes — the internal/wire raw
// codec. The frame, not the payload, carries versioning: the first
// frame a client sends is a Ping carrying the protocol version, and a
// server that cannot serve it answers with an error.
//
// See DESIGN.md §8 for the full message catalogue.
const (
	// ProtocolVersion is negotiated by the Ping op. Version 2 added the
	// replication ops (OpSubscribe, OpReplWait, OpPromote), the ack
	// sequence number on append responses and the Stats replication
	// fields. Version 3 added columnar payloads: rows on the append ops
	// and the replication record frames, OpRow and OpScanWhere, and the
	// schema in Stats.
	ProtocolVersion = 3

	// maxRowCells caps the cells one wire row may carry — mirrors the
	// store's column limit, enforced here so a hostile frame cannot make
	// the decoder allocate unboundedly.
	maxRowCells = 64

	// MaxFrame caps a single frame's payload. Anything larger is a
	// corrupt or hostile stream; the connection is closed.
	MaxFrame = 16 << 20

	frameHeaderLen = 4
)

// Opcodes. The zero value is invalid so an empty payload can never
// decode as a request.
const (
	OpPing byte = iota + 1
	OpAppend
	OpAppendBatch
	OpAccess
	OpRank
	OpCount
	OpSelect
	OpRankPrefix
	OpCountPrefix
	OpSelectPrefix
	OpIterate
	OpCursorClose
	OpFlush
	OpCompact
	OpStats
	OpMetrics
	OpIteratePrefix // appended in later revisions: earlier opcodes stay wire-stable
	// Replication (protocol version 2; see DESIGN.md §12): OpSubscribe
	// switches the connection into a WAL-frame stream, OpReplWait blocks
	// until the serving watermark covers a sequence number (read-your-
	// writes), OpPromote turns a follower writable.
	OpSubscribe
	OpReplWait
	OpPromote
	// Columns (protocol version 3; see DESIGN.md §13): OpRow reads the
	// payload row at a position, OpScanWhere streams positions matching a
	// value prefix intersected with numeric column predicates.
	OpRow
	OpScanWhere

	opLimit // one past the last valid opcode
)

// Response status bytes.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// Request is one decoded client request. Which fields are meaningful
// depends on Op:
//
//	OpPing                       Pos = protocol version
//	OpAppend                     Value, Rows (nil or one payload row)
//	OpAppendBatch                Values, Rows (nil or one row per value)
//	OpAccess, OpRow              Pos
//	OpRank, OpRankPrefix         Value, Pos
//	OpCount, OpCountPrefix       Value
//	OpSelect, OpSelectPrefix     Value, Pos (the occurrence index)
//	OpIterate                    Cursor (0 = open), Pos (start), Max
//	OpIteratePrefix              Value (prefix), Pos (match offset), Max
//	OpCursorClose                Cursor
//	OpFlush, OpCompact           —
//	OpStats, OpMetrics           —
//	OpSubscribe                  Value (follower id), Cursor (from seq), Max (1 = bootstrap ok)
//	OpReplWait                   Cursor (seq to cover), Max (timeout ms)
//	OpPromote                    —
//	OpScanWhere                  Value (prefix), Pos (match offset), Max, Preds
type Request struct {
	Op     byte
	Value  string
	Values []string
	Pos    int
	Max    int
	Cursor uint64
	// Rows carries payload rows on the append ops: nil for no payloads,
	// otherwise one row per value (individual rows may still be nil).
	Rows []store.Row
	// Preds carries OpScanWhere's numeric column predicates.
	Preds []store.Pred
}

// encodeCell writes one row cell: a kind tag, then the kind's payload.
func encodeCell(w *wire.Writer, v store.Value) {
	w.Byte(byte(v.Kind()))
	switch v.Kind() {
	case store.ColUint64:
		w.Uvarint(v.U64())
	case store.ColBytes:
		w.Blob(v.Blob())
	}
}

// parseCell reads one row cell. Arbitrary input must error, never
// panic — reached from the request and replication-frame fuzzers.
func parseCell(r *wire.Reader) store.Value {
	switch k := r.Byte(); store.ColumnKind(k) {
	case store.ColumnKind(0):
		return store.Null()
	case store.ColUint64:
		return store.U64(r.Uvarint())
	case store.ColBytes:
		return store.Blob(r.Blob())
	default:
		r.Fail("unknown cell kind %d", k)
		return store.Null()
	}
}

// encodeRow writes one payload row: a cell count (0 = nil row) and the
// cells. A nil row and a zero-column row are the same wire shape; both
// read back as nil (all-NULL).
func encodeRow(w *wire.Writer, row store.Row) {
	w.Uvarint(uint64(len(row)))
	for _, v := range row {
		encodeCell(w, v)
	}
}

// parseRow reads one payload row; 0 cells decodes as nil.
func parseRow(r *wire.Reader) store.Row {
	n := r.Uvarint()
	if n == 0 {
		return nil
	}
	if n > maxRowCells {
		r.Fail("row of %d cells (limit %d)", n, maxRowCells)
		return nil
	}
	row := make(store.Row, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		row = append(row, parseCell(r))
	}
	return row
}

// encodeRows writes an append op's row list: 0 for none, else one row
// per value.
func encodeRows(w *wire.Writer, rows []store.Row) {
	w.Uvarint(uint64(len(rows)))
	for _, row := range rows {
		encodeRow(w, row)
	}
}

// parseRows reads an append op's row list, which must be empty or hold
// exactly want rows.
func parseRows(r *wire.Reader, want int) []store.Row {
	n := r.Uvarint()
	if n == 0 {
		return nil
	}
	if n != uint64(want) {
		r.Fail("append carries %d rows for %d values", n, want)
		return nil
	}
	rows := make([]store.Row, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		rows = append(rows, parseRow(r))
	}
	return rows
}

// encodePreds writes OpScanWhere's predicate list.
func encodePreds(w *wire.Writer, preds []store.Pred) {
	w.Uvarint(uint64(len(preds)))
	for _, p := range preds {
		w.Uvarint(uint64(p.Col))
		w.Byte(byte(p.Op))
		w.Uvarint(p.Val)
	}
}

// parsePreds reads a predicate list. Semantic validation (column range,
// kind, known operator) happens in the store; here only the allocation
// is bounded.
func parsePreds(r *wire.Reader) []store.Pred {
	n := r.Uvarint()
	if n == 0 {
		return nil
	}
	if n > maxRowCells {
		r.Fail("scan carries %d predicates (limit %d)", n, maxRowCells)
		return nil
	}
	preds := make([]store.Pred, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		col := r.Uvarint()
		op := r.Byte()
		val := r.Uvarint()
		if col > maxRowCells {
			r.Fail("predicate column %d (limit %d)", col, maxRowCells)
			return nil
		}
		preds = append(preds, store.Pred{Col: int(col), Op: store.PredOp(op), Val: val})
	}
	return preds
}

// EncodeRequest serializes a request payload (without the frame
// header). EncodeRequest and ParseRequest are exact inverses for every
// valid request — the protocol round-trip test pins it, and the fuzzer
// guarantees ParseRequest never panics on anything else.
func EncodeRequest(req Request) []byte {
	w := wire.NewRawWriter()
	w.Byte(req.Op)
	switch req.Op {
	case OpPing:
		w.Uvarint(uint64(req.Pos))
	case OpAppend:
		w.Str(req.Value)
		encodeRows(w, req.Rows)
	case OpAppendBatch:
		w.Uvarint(uint64(len(req.Values)))
		for _, v := range req.Values {
			w.Str(v)
		}
		encodeRows(w, req.Rows)
	case OpAccess, OpRow:
		w.Uvarint(uint64(req.Pos))
	case OpScanWhere:
		w.Str(req.Value)
		w.Uvarint(uint64(req.Pos))
		w.Uvarint(uint64(req.Max))
		encodePreds(w, req.Preds)
	case OpRank, OpRankPrefix, OpSelect, OpSelectPrefix:
		w.Str(req.Value)
		w.Uvarint(uint64(req.Pos))
	case OpCount, OpCountPrefix:
		w.Str(req.Value)
	case OpIterate:
		w.Uvarint(req.Cursor)
		w.Uvarint(uint64(req.Pos))
		w.Uvarint(uint64(req.Max))
	case OpIteratePrefix:
		w.Str(req.Value)
		w.Uvarint(uint64(req.Pos))
		w.Uvarint(uint64(req.Max))
	case OpCursorClose:
		w.Uvarint(req.Cursor)
	case OpSubscribe:
		w.Str(req.Value)
		w.Uvarint(req.Cursor)
		w.Uvarint(uint64(req.Max))
	case OpReplWait:
		w.Uvarint(req.Cursor)
		w.Uvarint(uint64(req.Max))
	case OpFlush, OpCompact, OpStats, OpMetrics, OpPromote:
	default:
		panic(fmt.Sprintf("server: encoding unknown opcode %d", req.Op))
	}
	return w.Bytes()
}

// ParseRequest decodes a request payload. Arbitrary input must error,
// never panic — this is the server's trust boundary and it is fuzzed.
func ParseRequest(payload []byte) (Request, error) {
	var req Request
	r := wire.NewRawReader(payload)
	req.Op = r.Byte()
	if req.Op == 0 || req.Op >= opLimit {
		return req, fmt.Errorf("server: unknown opcode %d", req.Op)
	}
	readPos := func() int {
		v := r.Uvarint()
		if v > math.MaxInt64/2 {
			r.Fail("implausible position %d", v)
			return 0
		}
		return int(v)
	}
	switch req.Op {
	case OpPing:
		req.Pos = readPos()
	case OpAppend:
		req.Value = r.Str()
		req.Rows = parseRows(r, 1)
	case OpAppendBatch:
		n := r.Len() // validated against the remaining payload
		req.Values = make([]string, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			req.Values = append(req.Values, r.Str())
		}
		req.Rows = parseRows(r, n)
	case OpAccess, OpRow:
		req.Pos = readPos()
	case OpScanWhere:
		req.Value = r.Str()
		req.Pos = readPos()
		req.Max = readPos()
		req.Preds = parsePreds(r)
	case OpRank, OpRankPrefix, OpSelect, OpSelectPrefix:
		req.Value = r.Str()
		req.Pos = readPos()
	case OpCount, OpCountPrefix:
		req.Value = r.Str()
	case OpIterate:
		req.Cursor = r.Uvarint()
		req.Pos = readPos()
		req.Max = readPos()
	case OpIteratePrefix:
		req.Value = r.Str()
		req.Pos = readPos()
		req.Max = readPos()
	case OpCursorClose:
		req.Cursor = r.Uvarint()
	case OpSubscribe:
		req.Value = r.Str()
		req.Cursor = r.Uvarint()
		req.Max = readPos()
		if req.Max > 1 {
			r.Fail("subscribe bootstrap flag %d not 0 or 1", req.Max)
		}
	case OpReplWait:
		req.Cursor = r.Uvarint()
		req.Max = readPos()
	case OpFlush, OpCompact, OpStats, OpMetrics, OpPromote:
	}
	if err := r.Err(); err != nil {
		return req, err
	}
	if err := r.Done(); err != nil {
		return req, err
	}
	return req, nil
}

// GenStat describes one frozen generation in a Stats reply — the remote
// rendering of store.GenInfo.
type GenStat struct {
	ID         uint64
	Len        int
	SizeBits   int
	FilterBits int
	MinValue   string
	MaxValue   string
}

// Stats is the OpStats reply: the store's shape at the serving
// snapshot, plus enough of the host's runtime shape (GOMAXPROCS,
// NumCPU) for a remote client to judge throughput numbers — a 1-core
// container and a 32-core host answer the same Stats otherwise.
type Stats struct {
	Len        int
	Distinct   int
	Height     int
	SizeBits   int
	MemLen     int
	Shards     int
	GoMaxProcs int
	NumCPU     int
	// Router representation split (sharded backends; zero otherwise):
	// total router footprint in bits and the frozen-vs-live chunk count,
	// so the succinct-router memory win is observable remotely.
	RouterBits         int
	RouterFrozenChunks int
	RouterTailChunks   int
	// Replication (protocol version 2): the serving watermark (the
	// global sequence number new snapshots cover), the primary address
	// this server follows ("" when it is itself a primary), and how many
	// followers are subscribed to it.
	Watermark uint64
	Following string
	Followers int
	Gens      []GenStat
	// Schema is the store's pinned column schema (protocol version 3);
	// empty when the store carries no columnar attachments.
	Schema []store.ColumnSpec
}

func encodeStats(w *wire.Writer, st Stats) {
	w.Uvarint(uint64(st.Len))
	w.Uvarint(uint64(st.Distinct))
	w.Uvarint(uint64(st.Height))
	w.Uvarint(uint64(st.SizeBits))
	w.Uvarint(uint64(st.MemLen))
	w.Uvarint(uint64(st.Shards))
	w.Uvarint(uint64(st.GoMaxProcs))
	w.Uvarint(uint64(st.NumCPU))
	w.Uvarint(uint64(st.RouterBits))
	w.Uvarint(uint64(st.RouterFrozenChunks))
	w.Uvarint(uint64(st.RouterTailChunks))
	w.Uvarint(st.Watermark)
	w.Str(st.Following)
	w.Uvarint(uint64(st.Followers))
	w.Uvarint(uint64(len(st.Gens)))
	for _, g := range st.Gens {
		w.Uvarint(g.ID)
		w.Uvarint(uint64(g.Len))
		w.Uvarint(uint64(g.SizeBits))
		w.Uvarint(uint64(g.FilterBits))
		w.Str(g.MinValue)
		w.Str(g.MaxValue)
	}
	w.Uvarint(uint64(len(st.Schema)))
	for _, c := range st.Schema {
		w.Str(c.Name)
		w.Byte(byte(c.Kind))
	}
}

func parseStats(r *wire.Reader) Stats {
	var st Stats
	st.Len = int(r.Uvarint())
	st.Distinct = int(r.Uvarint())
	st.Height = int(r.Uvarint())
	st.SizeBits = int(r.Uvarint())
	st.MemLen = int(r.Uvarint())
	st.Shards = int(r.Uvarint())
	st.GoMaxProcs = int(r.Uvarint())
	st.NumCPU = int(r.Uvarint())
	st.RouterBits = int(r.Uvarint())
	st.RouterFrozenChunks = int(r.Uvarint())
	st.RouterTailChunks = int(r.Uvarint())
	st.Watermark = r.Uvarint()
	st.Following = r.Str()
	st.Followers = int(r.Uvarint())
	n := r.Len()
	for i := 0; i < n && r.Err() == nil; i++ {
		st.Gens = append(st.Gens, GenStat{
			ID: r.Uvarint(), Len: int(r.Uvarint()),
			SizeBits: int(r.Uvarint()), FilterBits: int(r.Uvarint()),
			MinValue: r.Str(), MaxValue: r.Str(),
		})
	}
	nc := r.Len()
	if nc > maxRowCells {
		r.Fail("schema of %d columns (limit %d)", nc, maxRowCells)
		return st
	}
	for i := 0; i < nc && r.Err() == nil; i++ {
		st.Schema = append(st.Schema, store.ColumnSpec{
			Name: r.Str(), Kind: store.ColumnKind(r.Byte()),
		})
	}
	return st
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame, rejecting implausible
// lengths before allocating.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
