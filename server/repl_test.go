package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/server"
	"repro/store"
)

// replNode is one in-process server plus a handle on its backing store
// so tests can fingerprint content without going through the protocol.
type replNode struct {
	srv  *server.Server
	addr string
	fp   func() uint64
	len  func() int
}

// startReplNode opens a store (plain or sharded) in a temp dir and
// serves it on loopback with fast replication heartbeats.
func startReplNode(t *testing.T, shards int, sopts *store.Options, opts *server.Options) *replNode {
	t.Helper()
	dir := t.TempDir()
	if opts == nil {
		opts = &server.Options{}
	}
	if opts.ReplHeartbeat == 0 {
		opts.ReplHeartbeat = 50 * time.Millisecond
	}
	var b server.Backend
	var closeStore func() error
	var fp func() uint64
	var length func() int
	if shards > 0 {
		ss, err := store.OpenSharded(dir, &store.ShardedOptions{Shards: shards, Store: derefOpts(sopts)})
		if err != nil {
			t.Fatal(err)
		}
		b, closeStore = server.ForSharded(ss), ss.Close
		fp = func() uint64 { return ss.Snapshot().ContentFingerprint() }
		length = ss.Len
	} else {
		st, err := store.Open(dir, sopts)
		if err != nil {
			t.Fatal(err)
		}
		b, closeStore = server.ForStore(st), st.Close
		fp = func() uint64 { return st.Snapshot().ContentFingerprint() }
		length = st.Len
	}
	srv := server.New(b, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		shutdownServer(t, srv)
		closeStore()
	})
	return &replNode{srv: srv, addr: l.Addr().String(), fp: fp, len: length}
}

func shutdownServer(t *testing.T, srv *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}

// waitUntil polls cond until it holds or the deadline lapses.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationLiveStream subscribes an empty follower to an empty
// primary and drives appends through both write paths, checking
// convergence, read-your-writes via WaitFor, and the stats surface.
func TestReplicationLiveStream(t *testing.T) {
	for _, shards := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			prim := startReplNode(t, shards, nil, nil)
			fol := startReplNode(t, shards, nil, nil)
			if err := fol.srv.Follow(prim.addr, "f-live"); err != nil {
				t.Fatal(err)
			}

			pc := dial(t, prim.addr)
			var seq uint64
			var err error
			if seq, err = pc.AppendSeq("solo/value"); err != nil {
				t.Fatal(err)
			}
			batch := make([]string, 200)
			for i := range batch {
				batch[i] = fmt.Sprintf("live/%03d", i%17)
			}
			if seq, err = pc.AppendBatchSeq(batch); err != nil {
				t.Fatal(err)
			}
			if want := uint64(1 + len(batch)); seq != want {
				t.Fatalf("AppendBatchSeq ack = %d, want %d", seq, want)
			}
			if pc.LastAcked() != seq {
				t.Fatalf("LastAcked = %d, want %d", pc.LastAcked(), seq)
			}

			// Read-your-writes on the follower: wait for the session token,
			// then every read must see the writes.
			fc := dial(t, fol.addr)
			wm, ok, err := fc.WaitFor(seq, 10*time.Second)
			if err != nil || !ok {
				t.Fatalf("WaitFor(%d) = %d, %v, %v", seq, wm, ok, err)
			}
			if got, err := fc.Access(0); err != nil || got != "solo/value" {
				t.Fatalf("follower Access(0) = %q, %v", got, err)
			}
			if n, err := fc.Count("live/003"); err != nil || n == 0 {
				t.Fatalf("follower Count = %d, %v", n, err)
			}
			if got, want := fol.fp(), prim.fp(); got != want {
				t.Fatalf("content fingerprints diverge: follower %x, primary %x", got, want)
			}

			// The stats surface reflects both roles.
			fst, err := fc.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if fst.Following != prim.addr {
				t.Fatalf("follower Stats.Following = %q, want %q", fst.Following, prim.addr)
			}
			if fst.Watermark != seq {
				t.Fatalf("follower Stats.Watermark = %d, want %d", fst.Watermark, seq)
			}
			waitUntil(t, 5*time.Second, "primary to see one follower", func() bool {
				pst, err := pc.Stats()
				return err == nil && pst.Followers == 1
			})
		})
	}
}

// TestReplicationBootstrapSnapshot starts the follower after the
// primary already holds data (partly frozen), forcing the snapshot
// bootstrap path rather than catch-up from sequence zero.
func TestReplicationBootstrapSnapshot(t *testing.T) {
	prim := startReplNode(t, 0, nil, nil)
	pc := dial(t, prim.addr)

	vals := make([]string, 600)
	for i := range vals {
		vals[i] = fmt.Sprintf("boot/%04d", i*i%311)
	}
	if _, err := pc.AppendBatchSeq(vals[:400]); err != nil {
		t.Fatal(err)
	}
	if err := pc.Flush(); err != nil {
		t.Fatal(err)
	}
	seq, err := pc.AppendBatchSeq(vals[400:])
	if err != nil {
		t.Fatal(err)
	}

	fol := startReplNode(t, 0, nil, nil)
	if err := fol.srv.Follow(prim.addr, "f-boot"); err != nil {
		t.Fatal(err)
	}
	fc := dial(t, fol.addr)
	if _, ok, err := fc.WaitFor(seq, 15*time.Second); err != nil || !ok {
		t.Fatalf("bootstrap WaitFor(%d): ok=%v err=%v", seq, ok, err)
	}
	if fol.len() != len(vals) {
		t.Fatalf("follower len = %d, want %d", fol.len(), len(vals))
	}
	if got, want := fol.fp(), prim.fp(); got != want {
		t.Fatalf("fingerprints diverge after bootstrap: %x vs %x", got, want)
	}

	// The stream stays live after bootstrap: new appends keep flowing.
	seq, err = pc.AppendSeq("boot/after")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := fc.WaitFor(seq, 10*time.Second); err != nil || !ok {
		t.Fatalf("post-bootstrap WaitFor: ok=%v err=%v", ok, err)
	}
	if got, err := fc.Access(len(vals)); err != nil || got != "boot/after" {
		t.Fatalf("follower Access(tail) = %q, %v", got, err)
	}
}

// TestReplicationDifferential hammers the primary with concurrent
// batched appends, flushes and compactions while a follower tails the
// stream, then quiesces and checks the follower is indistinguishable
// from the primary: equal content fingerprints plus a few hundred
// random probes across the whole op surface against a flat oracle.
func TestReplicationDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential replication test is not short")
	}
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sopts := &store.Options{FlushThreshold: 512, DisableAutoFlush: true, Columns: crashSchema()}
			prim := startReplNode(t, shards, sopts, nil)
			fol := startReplNode(t, shards, sopts, nil)
			if err := fol.srv.Follow(prim.addr, "f-diff"); err != nil {
				t.Fatal(err)
			}

			const (
				writers       = 3
				batchesPerW   = 40
				valuesPerCall = 25
			)
			var wg sync.WaitGroup
			var mu sync.Mutex
			var maxSeq uint64
			errc := make(chan error, writers+1)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := dial(t, prim.addr)
					rng := rand.New(rand.NewSource(int64(1000 + w)))
					for i := 0; i < batchesPerW; i++ {
						batch := make([]string, valuesPerCall)
						rows := make([]store.Row, valuesPerCall)
						for j := range batch {
							batch[j] = fmt.Sprintf("d/%d/%02d", w, rng.Intn(40))
							rows[j] = crashRowFor(w, i*valuesPerCall+j)
						}
						seq, err := c.AppendBatchRowsSeq(batch, rows)
						if err != nil {
							errc <- fmt.Errorf("writer %d: %w", w, err)
							return
						}
						mu.Lock()
						if seq > maxSeq {
							maxSeq = seq
						}
						mu.Unlock()
					}
				}(w)
			}
			// Maintenance churn: flush and compact race the writers so the
			// stream crosses generation boundaries and snapshot reshapes.
			stopMaint := make(chan struct{})
			maintDone := make(chan struct{})
			go func() {
				defer close(maintDone)
				c := dial(t, prim.addr)
				for i := 0; ; i++ {
					select {
					case <-stopMaint:
						return
					case <-time.After(20 * time.Millisecond):
					}
					var err error
					if i%3 == 2 {
						err = c.Compact()
					} else {
						err = c.Flush()
					}
					if err != nil {
						errc <- fmt.Errorf("maintenance: %w", err)
						return
					}
				}
			}()

			wg.Wait()
			close(stopMaint)
			<-maintDone
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}

			total := writers * batchesPerW * valuesPerCall
			if want := uint64(total); maxSeq != want {
				t.Fatalf("max acked seq = %d, want %d", maxSeq, want)
			}

			// Quiesce: the follower's watermark must cover every ack.
			fc := dial(t, fol.addr)
			if _, ok, err := fc.WaitFor(maxSeq, 30*time.Second); err != nil || !ok {
				t.Fatalf("quiesce WaitFor(%d): ok=%v err=%v", maxSeq, ok, err)
			}
			if fol.len() != total {
				t.Fatalf("follower len = %d, want %d", fol.len(), total)
			}
			if got, want := fol.fp(), prim.fp(); got != want {
				t.Fatalf("fingerprints diverge: follower %x, primary %x", got, want)
			}

			// Oracle probes: the flat sequence from the primary answers
			// every op; the follower must agree on ~200 random probes.
			pc := dial(t, prim.addr)
			oracle, err := pc.Slice(0, total)
			if err != nil {
				t.Fatal(err)
			}
			probeOpSurface(t, fc, oracle, 200)

			// Payload rows replicated with the values: the follower
			// serves the primary's row at every sampled position (the
			// fingerprint equality above already covers all of them).
			for pos := 0; pos < total; pos += 97 {
				fr, err := fc.Row(pos)
				if err != nil {
					t.Fatal(err)
				}
				pr, err := pc.Row(pos)
				if err != nil {
					t.Fatal(err)
				}
				if !sameRow(fr, pr) {
					t.Fatalf("Row(%d): follower %v, primary %v", pos, fr, pr)
				}
			}
		})
	}
}

// probeOpSurface fires n random probes across the full query surface
// of c and checks every answer against the flat oracle.
func probeOpSurface(t *testing.T, c *server.Client, oracle []string, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	distinct := map[string]bool{}
	for _, v := range oracle {
		distinct[v] = true
	}
	values := make([]string, 0, len(distinct))
	for v := range distinct {
		values = append(values, v)
	}
	sort.Strings(values)
	pick := func() string { return values[rng.Intn(len(values))] }
	prefixOf := func(v string) string {
		if len(v) == 0 {
			return ""
		}
		return v[:1+rng.Intn(len(v))]
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0: // Access
			pos := rng.Intn(len(oracle))
			got, err := c.Access(pos)
			if err != nil || got != oracle[pos] {
				t.Fatalf("probe %d: Access(%d) = %q, %v; want %q", i, pos, got, err, oracle[pos])
			}
		case 1: // Rank
			v, pos := pick(), rng.Intn(len(oracle)+1)
			want := 0
			for _, o := range oracle[:pos] {
				if o == v {
					want++
				}
			}
			got, err := c.Rank(v, pos)
			if err != nil || got != want {
				t.Fatalf("probe %d: Rank(%q,%d) = %d, %v; want %d", i, v, pos, got, err, want)
			}
		case 2: // Count
			v := pick()
			want := 0
			for _, o := range oracle {
				if o == v {
					want++
				}
			}
			got, err := c.Count(v)
			if err != nil || got != want {
				t.Fatalf("probe %d: Count(%q) = %d, %v; want %d", i, v, got, err, want)
			}
		case 3: // Select
			v := pick()
			total := 0
			for _, o := range oracle {
				if o == v {
					total++
				}
			}
			if total == 0 {
				continue
			}
			idx := rng.Intn(total)
			wantPos, seen := -1, 0
			for p, o := range oracle {
				if o == v {
					if seen == idx {
						wantPos = p
						break
					}
					seen++
				}
			}
			pos, ok, err := c.Select(v, idx)
			if err != nil || !ok || pos != wantPos {
				t.Fatalf("probe %d: Select(%q,%d) = %d,%v,%v; want %d", i, v, idx, pos, ok, err, wantPos)
			}
		case 4: // CountPrefix + RankPrefix
			p := prefixOf(pick())
			pos := rng.Intn(len(oracle) + 1)
			wantRank, wantCount := 0, 0
			for j, o := range oracle {
				if strings.HasPrefix(o, p) {
					wantCount++
					if j < pos {
						wantRank++
					}
				}
			}
			gotCount, err := c.CountPrefix(p)
			if err != nil || gotCount != wantCount {
				t.Fatalf("probe %d: CountPrefix(%q) = %d, %v; want %d", i, p, gotCount, err, wantCount)
			}
			gotRank, err := c.RankPrefix(p, pos)
			if err != nil || gotRank != wantRank {
				t.Fatalf("probe %d: RankPrefix(%q,%d) = %d, %v; want %d", i, p, pos, gotRank, err, wantRank)
			}
		case 5: // SelectPrefix
			p := prefixOf(pick())
			var positions []int
			for j, o := range oracle {
				if strings.HasPrefix(o, p) {
					positions = append(positions, j)
				}
			}
			if len(positions) == 0 {
				continue
			}
			idx := rng.Intn(len(positions))
			pos, ok, err := c.SelectPrefix(p, idx)
			if err != nil || !ok || pos != positions[idx] {
				t.Fatalf("probe %d: SelectPrefix(%q,%d) = %d,%v,%v; want %d", i, p, idx, pos, ok, err, positions[idx])
			}
		}
	}
}

// TestFollowerRefusesWritesThenPromote checks the follower's read-only
// contract and its promotion into a writable primary.
func TestFollowerRefusesWritesThenPromote(t *testing.T) {
	prim := startReplNode(t, 0, nil, nil)
	fol := startReplNode(t, 0, nil, nil)
	if err := fol.srv.Follow(prim.addr, "f-promo"); err != nil {
		t.Fatal(err)
	}

	pc := dial(t, prim.addr)
	seq, err := pc.AppendSeq("before/promotion")
	if err != nil {
		t.Fatal(err)
	}
	fc := dial(t, fol.addr)
	if _, ok, err := fc.WaitFor(seq, 10*time.Second); err != nil || !ok {
		t.Fatalf("WaitFor: ok=%v err=%v", ok, err)
	}

	// Writes are refused while following, and the refusal names the
	// primary so clients can re-aim.
	err = fc.Append("refused")
	var se *server.ServerError
	if !asServerError(err, &se) || !strings.Contains(se.Msg, prim.addr) {
		t.Fatalf("follower append error = %v, want ServerError naming %s", err, prim.addr)
	}

	// Promote over the wire: the first call reports it was following,
	// the second that it already was a primary.
	was, err := fc.Promote()
	if err != nil || !was {
		t.Fatalf("Promote = %v, %v; want true", was, err)
	}
	if was, err = fc.Promote(); err != nil || was {
		t.Fatalf("second Promote = %v, %v; want false", was, err)
	}
	if got := fol.srv.Following(); got != "" {
		t.Fatalf("Following() after promote = %q, want empty", got)
	}

	// The promoted server accepts writes and serves its full history.
	seq2, err := fc.AppendSeq("after/promotion")
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != seq+1 {
		t.Fatalf("post-promotion seq = %d, want %d", seq2, seq+1)
	}
	if got, err := fc.Access(0); err != nil || got != "before/promotion" {
		t.Fatalf("Access(0) = %q, %v", got, err)
	}
	if got, err := fc.Access(1); err != nil || got != "after/promotion" {
		t.Fatalf("Access(1) = %q, %v", got, err)
	}
}

func asServerError(err error, target **server.ServerError) bool {
	se, ok := err.(*server.ServerError)
	if ok {
		*target = se
	}
	return ok
}

// TestReplicationHTTPGateway checks the gateway's replication surface:
// follower writes answer 421 with the primary's address, consistency
// tokens gate reads on the watermark, and /v1/repl reports the role.
func TestReplicationHTTPGateway(t *testing.T) {
	prim := startReplNode(t, 0, nil, nil)
	fol := startReplNode(t, 0, nil, nil)
	if err := fol.srv.Follow(prim.addr, "f-http"); err != nil {
		t.Fatal(err)
	}
	pg := httptest.NewServer(prim.srv.HTTPHandler())
	defer pg.Close()
	fg := httptest.NewServer(fol.srv.HTTPHandler())
	defer fg.Close()

	// A write through the primary gateway carries the ack seq in both
	// the X-WT-Seq header and the JSON body.
	resp, err := http.Post(pg.URL+"/v1/append", "application/json",
		strings.NewReader(`{"values": ["http/a", "http/b"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary append status = %d", resp.StatusCode)
	}
	seq, err := strconv.ParseUint(resp.Header.Get("X-WT-Seq"), 10, 64)
	if err != nil || seq != 2 {
		t.Fatalf("X-WT-Seq = %q (%v), want 2", resp.Header.Get("X-WT-Seq"), err)
	}

	// A write against the follower gateway is misdirected: 421 plus the
	// primary's address.
	resp, err = http.Post(fg.URL+"/v1/append", "application/json",
		strings.NewReader(`{"values": ["nope"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower append status = %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get("X-WT-Primary"); got != prim.addr {
		t.Fatalf("X-WT-Primary = %q, want %q", got, prim.addr)
	}

	// A read with the write's token waits for replication and then sees
	// the write.
	req, _ := http.NewRequest("GET", fg.URL+"/v1/access?pos=1", nil)
	req.Header.Set("X-WT-Consistency-Token", strconv.FormatUint(seq, 10))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "http/b") {
		t.Fatalf("token read: status %d, body %q", resp.StatusCode, body)
	}

	// A garbage token is a client error.
	req, _ = http.NewRequest("GET", fg.URL+"/v1/access?pos=0", nil)
	req.Header.Set("X-WT-Consistency-Token", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad token status = %d, want 400", resp.StatusCode)
	}

	// A token from the future times out with 503 + Retry-After.
	req, _ = http.NewRequest("GET", fg.URL+"/v1/access?pos=0", nil)
	req.Header.Set("X-WT-Consistency-Token", "99999999")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("future token status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("future token reply carries no Retry-After")
	}

	// /v1/repl names the role on both ends.
	for _, tc := range []struct{ url, role string }{
		{fg.URL, "follower"},
		{pg.URL, "primary"},
	} {
		resp, err := http.Get(tc.url + "/v1/repl")
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if !strings.Contains(body, fmt.Sprintf("%q", tc.role)) {
			t.Fatalf("/v1/repl on %s = %q, want role %q", tc.url, body, tc.role)
		}
	}
}

// TestReplicationChain streams through a middle hop: A -> B -> C. The
// middle follower republishes every applied record to its own
// subscribers, so the tail converges too.
func TestReplicationChain(t *testing.T) {
	a := startReplNode(t, 0, nil, nil)
	b := startReplNode(t, 0, nil, nil)
	c := startReplNode(t, 0, nil, nil)
	if err := b.srv.Follow(a.addr, "chain-b"); err != nil {
		t.Fatal(err)
	}
	if err := c.srv.Follow(b.addr, "chain-c"); err != nil {
		t.Fatal(err)
	}

	ac := dial(t, a.addr)
	vals := make([]string, 150)
	for i := range vals {
		vals[i] = fmt.Sprintf("chain/%03d", i%13)
	}
	seq, err := ac.AppendBatchSeq(vals)
	if err != nil {
		t.Fatal(err)
	}
	cc := dial(t, c.addr)
	if _, ok, err := cc.WaitFor(seq, 15*time.Second); err != nil || !ok {
		t.Fatalf("tail WaitFor(%d): ok=%v err=%v", seq, ok, err)
	}
	if got, want := c.fp(), a.fp(); got != want {
		t.Fatalf("chain tail fingerprint %x, head %x", got, want)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
