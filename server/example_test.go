package server_test

import (
	"context"
	"fmt"
	"net"
	"os"

	"repro/server"
	"repro/store"
)

// ExampleServer starts a server over a fresh store on loopback, drives
// it with the binary-protocol client — batched ingest, point queries,
// a pinned-snapshot scan — and drains it.
func ExampleServer() {
	dir, _ := os.MkdirTemp("", "wtserve-example-*")
	defer os.RemoveAll(dir)

	st, err := store.Open(dir, nil)
	if err != nil {
		panic(err)
	}
	defer st.Close()

	srv := server.New(server.ForStore(st), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(l)

	c, err := server.Dial(l.Addr().String())
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// One round trip, one group commit, atomic and order-preserving.
	if err := c.AppendBatch([]string{
		"GET /index.html", "GET /logo.png", "POST /login", "GET /index.html",
	}); err != nil {
		panic(err)
	}

	count, _ := c.Count("GET /index.html")
	gets, _ := c.CountPrefix("GET ")
	pos, ok, _ := c.Select("GET /index.html", 1)
	fmt.Printf("count=%d gets=%d second-at=%d ok=%v\n", count, gets, pos, ok)

	// The scan walks one pinned snapshot, immune to concurrent appends.
	c.Scan(0, -1, 2, func(pos int, v string) bool {
		fmt.Printf("%d: %s\n", pos, v)
		return true
	})

	if err := srv.Shutdown(context.Background()); err != nil {
		panic(err)
	}
	// Output:
	// count=2 gets=3 second-at=3 ok=true
	// 0: GET /index.html
	// 1: GET /logo.png
	// 2: POST /login
	// 3: GET /index.html
}
