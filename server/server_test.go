package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/server"
	"repro/store"
)

// startServer opens a store in a temp dir, wraps it in a Server and
// serves the binary protocol on loopback. Cleanup drains and closes.
func startServer(t *testing.T, shards int, sopts *store.Options, opts *server.Options) (*server.Server, string) {
	t.Helper()
	dir := t.TempDir()
	var b server.Backend
	var closeStore func() error
	if shards > 0 {
		ss, err := store.OpenSharded(dir, &store.ShardedOptions{Shards: shards, Store: derefOpts(sopts)})
		if err != nil {
			t.Fatal(err)
		}
		b, closeStore = server.ForSharded(ss), ss.Close
	} else {
		st, err := store.Open(dir, sopts)
		if err != nil {
			t.Fatal(err)
		}
		b, closeStore = server.ForStore(st), st.Close
	}
	srv := server.New(b, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		closeStore()
	})
	return srv, l.Addr().String()
}

func derefOpts(o *store.Options) store.Options {
	if o == nil {
		return store.Options{}
	}
	return *o
}

func dial(t *testing.T, addr string) *server.Client {
	t.Helper()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestEndToEnd drives the whole op surface over a real connection, on
// both the plain and the sharded backend.
func TestEndToEnd(t *testing.T) {
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, addr := startServer(t, shards, nil, nil)
			c := dial(t, addr)

			vals := []string{"get/a", "get/b", "post/a", "get/a", "put/x", "get/c"}
			if err := c.Append(vals[0]); err != nil {
				t.Fatal(err)
			}
			if err := c.AppendBatch(vals[1:]); err != nil {
				t.Fatal(err)
			}

			st, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Len != len(vals) {
				t.Fatalf("Stats.Len = %d, want %d", st.Len, len(vals))
			}
			if want := map[bool]int{true: 2, false: 1}[shards == 2]; st.Shards != want {
				t.Fatalf("Stats.Shards = %d, want %d", st.Shards, want)
			}

			for i, want := range vals {
				got, err := c.Access(i)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("Access(%d) = %q, want %q", i, got, want)
				}
			}
			if n, err := c.Count("get/a"); err != nil || n != 2 {
				t.Fatalf("Count = %d, %v, want 2", n, err)
			}
			if n, err := c.Rank("get/a", 2); err != nil || n != 1 {
				t.Fatalf("Rank = %d, %v, want 1", n, err)
			}
			if pos, ok, err := c.Select("get/a", 1); err != nil || !ok || pos != 3 {
				t.Fatalf("Select = %d, %v, %v, want 3", pos, ok, err)
			}
			if _, ok, err := c.Select("absent", 0); err != nil || ok {
				t.Fatalf("Select(absent) ok = %v, err %v", ok, err)
			}
			if n, err := c.CountPrefix("get/"); err != nil || n != 4 {
				t.Fatalf("CountPrefix = %d, %v, want 4", n, err)
			}
			if n, err := c.RankPrefix("get/", 3); err != nil || n != 2 {
				t.Fatalf("RankPrefix = %d, %v, want 2", n, err)
			}
			if pos, ok, err := c.SelectPrefix("get/", 3); err != nil || !ok || pos != 5 {
				t.Fatalf("SelectPrefix = %d, %v, %v, want 5", pos, ok, err)
			}

			got, err := c.Slice(0, len(vals))
			if err != nil {
				t.Fatal(err)
			}
			if strings.Join(got, ",") != strings.Join(vals, ",") {
				t.Fatalf("Slice = %v, want %v", got, vals)
			}

			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := c.Compact(); err != nil {
				t.Fatal(err)
			}
			st, err = c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Len != len(vals) || st.MemLen != 0 {
				t.Fatalf("after flush: Len=%d MemLen=%d", st.Len, st.MemLen)
			}
			if len(st.Gens) == 0 {
				t.Fatal("no generations after flush")
			}

			// Out-of-range positions are error responses, not dead
			// connections.
			if _, err := c.Access(1 << 40); err == nil {
				t.Fatal("out-of-range Access: no error")
			}
			if _, err := c.Access(0); err != nil {
				t.Fatalf("connection dead after error response: %v", err)
			}
		})
	}
}

// TestCursorPinsSnapshot opens a scan cursor, appends mid-walk, and
// checks the walk stays on its pinned view while a fresh scan sees the
// appended tail.
func TestCursorPinsSnapshot(t *testing.T) {
	_, addr := startServer(t, 0, nil, nil)
	c := dial(t, addr)
	var first []string
	for i := 0; i < 100; i++ {
		first = append(first, fmt.Sprintf("v/%03d", i))
	}
	if err := c.AppendBatch(first); err != nil {
		t.Fatal(err)
	}

	var walked []string
	step := 0
	err := c.Scan(0, -1, 10, func(pos int, v string) bool {
		if step == 5 {
			// Mid-walk append: must not show up in this cursor.
			if err := c.Append("intruder"); err != nil {
				t.Fatal(err)
			}
		}
		step++
		walked = append(walked, v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(walked) != len(first) {
		t.Fatalf("pinned walk saw %d values, want %d", len(walked), len(first))
	}
	for i, v := range walked {
		if v != first[i] {
			t.Fatalf("walked[%d] = %q, want %q", i, v, first[i])
		}
	}
	all, err := c.Slice(0, 101)
	if err != nil {
		t.Fatal(err)
	}
	if all[100] != "intruder" {
		t.Fatalf("fresh scan tail = %q, want intruder", all[100])
	}
}

// TestCursorTTL expires an abandoned cursor and checks resuming it
// errors.
func TestCursorTTL(t *testing.T) {
	srv, addr := startServer(t, 0, nil, &server.Options{CursorTTL: 50 * time.Millisecond})
	c := dial(t, addr)
	var vals []string
	for i := 0; i < 50; i++ {
		vals = append(vals, fmt.Sprintf("v/%02d", i))
	}
	if err := c.AppendBatch(vals); err != nil {
		t.Fatal(err)
	}
	stop := 0
	err := c.Scan(0, -1, 10, func(pos int, v string) bool {
		stop++
		if stop == 10 {
			time.Sleep(300 * time.Millisecond) // outlive the lease
		}
		return true
	})
	if err == nil {
		t.Fatal("resume after TTL: no error")
	}
	if !strings.Contains(err.Error(), "cursor") {
		t.Fatalf("resume after TTL: %v", err)
	}
	_ = srv
}

// TestResultCache checks hot point queries hit the cache and that any
// append makes the hot entries unreachable (fresh fingerprint) rather
// than stale.
func TestResultCache(t *testing.T) {
	srv, addr := startServer(t, 0, nil, nil)
	c := dial(t, addr)
	if err := c.AppendBatch([]string{"a", "b", "a", "c"}); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Count("a"); err != nil || n != 2 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	misses := srv.Metrics().CacheMisses.Load()
	hits := srv.Metrics().CacheHits.Load()
	for i := 0; i < 10; i++ {
		if n, err := c.Count("a"); err != nil || n != 2 {
			t.Fatalf("Count = %d, %v", n, err)
		}
	}
	if got := srv.Metrics().CacheHits.Load() - hits; got != 10 {
		t.Fatalf("repeat Count produced %d cache hits, want 10", got)
	}
	if got := srv.Metrics().CacheMisses.Load() - misses; got != 0 {
		t.Fatalf("repeat Count produced %d cache misses, want 0", got)
	}
	// An append invalidates by fingerprint: the same query misses once,
	// and its answer reflects the new state.
	if err := c.Append("a"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Count("a"); err != nil || n != 3 {
		t.Fatalf("Count after append = %d, %v, want 3", n, err)
	}
}

// TestGroupCommitCoalesces floods the write path from many goroutines
// and checks the committer folded them into fewer batches.
func TestGroupCommitCoalesces(t *testing.T) {
	srv, addr := startServer(t, 0, nil, nil)
	const clients, per = 8, 50
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func(g int) {
			c, err := server.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for i := 0; i < per; i++ {
				if err := c.Append(fmt.Sprintf("c%d/%03d", g, i)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < clients; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	m := srv.Metrics()
	if got := m.BatchedAppends.Load(); got != clients*per {
		t.Fatalf("BatchedAppends = %d, want %d", got, clients*per)
	}
	c := dial(t, addr)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Len != clients*per {
		t.Fatalf("Len = %d, want %d", st.Len, clients*per)
	}
	t.Logf("%d appends committed in %d batches (%d coalesced)",
		m.BatchedAppends.Load(), m.Batches.Load(), m.CoalescedCommits.Load())
}

// TestGracefulDrain checks Shutdown finishes in-flight work, refuses
// new connections, and leaves every acknowledged append in the store.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.ForStore(st), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	c, err := server.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Append(fmt.Sprintf("v/%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("Draining() = false after Shutdown")
	}
	if _, err := server.Dial(l.Addr().String()); err == nil {
		t.Fatal("dial after drain succeeded")
	}
	// The store is intact and owns every acknowledged append.
	if st.Len() != 20 {
		t.Fatalf("store Len = %d, want 20", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConnLimitBackpressure holds MaxConns connections and checks a
// further client is not served until a slot frees.
func TestConnLimitBackpressure(t *testing.T) {
	_, addr := startServer(t, 0, nil, &server.Options{MaxConns: 2})
	c1 := dial(t, addr)
	c2 := dial(t, addr)
	if err := c1.Append("a"); err != nil {
		t.Fatal(err)
	}
	if err := c2.Append("b"); err != nil {
		t.Fatal(err)
	}
	// The third connection parks in the backlog: its Ping cannot
	// complete while both slots are held.
	done := make(chan error, 1)
	go func() {
		c3, err := server.Dial(addr)
		if err == nil {
			defer c3.Close()
			_, err = c3.Count("a")
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("third connection served while slots full (err=%v)", err)
	case <-time.After(200 * time.Millisecond):
	}
	c1.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("third connection after slot freed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("third connection never served after slot freed")
	}
}

// TestHTTPGateway drives the JSON endpoints through httptest.
func TestHTTPGateway(t *testing.T) {
	srv, addr := startServer(t, 0, nil, nil)
	_ = addr
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}
	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	post("/v1/append", `{"values":["x/a","x/b","y/c","x/a"]}`)
	if out := get("/v1/count?v=x/a"); out["count"].(float64) != 2 {
		t.Fatalf("count = %v", out)
	}
	if out := get("/v1/access?pos=2"); out["value"].(string) != "y/c" {
		t.Fatalf("access = %v", out)
	}
	if out := get("/v1/countprefix?p=x/"); out["count"].(float64) != 3 {
		t.Fatalf("countprefix = %v", out)
	}
	if out := get("/v1/select?v=x/a&idx=1"); out["pos"].(float64) != 3 || out["ok"].(bool) != true {
		t.Fatalf("select = %v", out)
	}
	if out := get("/v1/scan?start=1&n=2"); len(out["values"].([]any)) != 2 {
		t.Fatalf("scan = %v", out)
	}
	// ?p= alone is a valid first page: from defaults to 0, n to the cap.
	if out := get("/v1/scanprefix?p=x/"); len(out["values"].([]any)) != 3 || out["done"].(bool) != true {
		t.Fatalf("scanprefix = %v", out)
	}
	if out := get("/v1/scanprefix?p=x/&from=1&n=1"); out["done"].(bool) != false ||
		out["values"].([]any)[0].(string) != "x/b" || out["positions"].([]any)[0].(float64) != 1 {
		t.Fatalf("scanprefix paged = %v", out)
	}
	post("/v1/flush", "")
	if out := get("/v1/stats"); out["memtable_len"].(float64) != 0 || out["len"].(float64) != 4 {
		t.Fatalf("stats = %v", out)
	}
	// /metrics is Prometheus text exposition, not JSON.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil || mresp.StatusCode != 200 {
		t.Fatalf("metrics: %v %v", mresp.StatusCode, err)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"# TYPE wt_server_requests_total counter",
		"wt_server_op_seconds_bucket",
		"wt_batcher_batch_size",
		"wt_cache_hits_total",
		"wt_wal_fsync_seconds",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, mbody)
		}
	}
	// The tracer dump is JSON.
	tresp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil || tresp.StatusCode != 200 {
		t.Fatalf("debug/trace: %v %v", tresp.StatusCode, err)
	}
	var spans []map[string]any
	if err := json.NewDecoder(tresp.Body).Decode(&spans); err != nil {
		t.Fatalf("debug/trace not JSON: %v", err)
	}
	tresp.Body.Close()
	// pprof is wired onto the gateway mux.
	presp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil || presp.StatusCode != 200 {
		t.Fatalf("debug/pprof: %v %v", presp.StatusCode, err)
	}
	presp.Body.Close()
	// Bad positions are 400s, not crashes.
	if resp, err := http.Get(ts.URL + "/v1/access?pos=99999"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oob access: %v %v", resp.StatusCode, err)
	}
}

// TestScanLargeValues walks values big enough that a count-capped
// batch would blow the frame limit: the byte budget must split the
// response across round trips instead of killing the connection.
func TestScanLargeValues(t *testing.T) {
	_, addr := startServer(t, 0, nil, nil)
	c := dial(t, addr)
	big := strings.Repeat("x", 1<<20) // 1 MiB per value
	vals := make([]string, 12)
	for i := range vals {
		vals[i] = fmt.Sprintf("%02d/%s", i, big)
	}
	if err := c.AppendBatch(vals); err != nil {
		t.Fatal(err)
	}
	var got int
	err := c.Scan(0, -1, 1024, func(pos int, v string) bool {
		if v != vals[pos] {
			t.Fatalf("Scan pos %d: wrong value (len %d)", pos, len(v))
		}
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != len(vals) {
		t.Fatalf("Scan saw %d values, want %d", got, len(vals))
	}
}

// TestScanPrefix drives the stateless prefix iteration end to end on
// both backends: paginated resume by match index, early stop, bounded
// n, and absent prefixes. The sharded run also checks that Stats
// surfaces the router representation split.
func TestScanPrefix(t *testing.T) {
	for _, shards := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, addr := startServer(t, shards, nil, nil)
			c := dial(t, addr)

			vals := make([]string, 500)
			for i := range vals {
				vals[i] = fmt.Sprintf("p%d/%03d", i%3, i)
			}
			if err := c.AppendBatch(vals); err != nil {
				t.Fatal(err)
			}
			var want []int
			for pos, v := range vals {
				if strings.HasPrefix(v, "p1/") {
					want = append(want, pos)
				}
			}
			// Small batch forces several round trips of stateless resume.
			var got []int
			err := c.ScanPrefix("p1/", 0, -1, 7, func(idx, pos int, v string) bool {
				if idx != len(got) || v != vals[pos] {
					t.Fatalf("ScanPrefix yield idx=%d pos=%d v=%q, have %d matches", idx, pos, v, len(got))
				}
				got = append(got, pos)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("ScanPrefix positions = %v, want %v", got, want)
			}
			// Offset + bounded n: matches [5, 5+9).
			var window []int
			err = c.ScanPrefix("p1/", 5, 9, 4, func(idx, pos int, _ string) bool {
				if idx != 5+len(window) {
					t.Fatalf("window yield idx=%d, want %d", idx, 5+len(window))
				}
				window = append(window, pos)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(window) != fmt.Sprint(want[5:14]) {
				t.Fatalf("window = %v, want %v", window, want[5:14])
			}
			// Early stop and absent prefix.
			calls := 0
			if err := c.ScanPrefix("p", 0, -1, 16, func(int, int, string) bool { calls++; return calls < 3 }); err != nil {
				t.Fatal(err)
			}
			if calls != 3 {
				t.Fatalf("early stop after %d calls", calls)
			}
			if err := c.ScanPrefix("zzz", 0, -1, 0, func(int, int, string) bool {
				t.Fatal("absent prefix yielded a match")
				return false
			}); err != nil {
				t.Fatal(err)
			}

			st, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if shards > 0 {
				if st.RouterBits <= 0 || st.RouterTailChunks == 0 {
					t.Fatalf("sharded stats missing router split: %+v", st)
				}
			} else if st.RouterBits != 0 {
				t.Fatalf("plain stats reports router bits: %+v", st)
			}
		})
	}
}
