package server_test

// The crash test re-executes this test binary as a real wtserve-style
// child process (Sync store + Server on loopback), lets concurrent
// clients append acknowledged batches, then SIGKILLs the child mid
// batch stream and reopens the directory in-process. The contract
// under test is the WAL-durable prefix: with Options.Sync every
// acknowledged append survives a kill -9, each client's surviving
// values are a prefix of what it sent (in order, possibly extended by
// an in-flight unacknowledged batch), and the recovered store answers
// the full op surface like a flat oracle over what it actually holds.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/server"
	"repro/store"
)

// crashSchema is the column schema both crash-test children pin: the
// kill and failover tests append payload rows next to every value, so
// the durable-prefix contract is checked over rows too.
func crashSchema() []store.ColumnSpec {
	return []store.ColumnSpec{
		{Name: "idx", Kind: store.ColUint64},
		{Name: "tag", Kind: store.ColBytes},
	}
}

// crashRowFor derives client g's payload row for its j-th value — a
// pure function of the value, so recovery can recompute the expected
// row for whatever survived. Every 5th row is absent and every 7th tag
// is NULL, so the NULL paths cross the WAL and the wire too.
func crashRowFor(g, j int) store.Row {
	if j%5 == 4 {
		return nil
	}
	row := store.Row{store.U64(uint64(j)), store.Blob([]byte(fmt.Sprintf("tag/g%d", g)))}
	if j%7 == 6 {
		row[1] = store.Null()
	}
	return row
}

// sameRow reports cell-for-cell equality of two payload rows (store.Row
// is not comparable: blob cells carry slices).
func sameRow(a, b store.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if a[c].Kind() != b[c].Kind() || a[c].U64() != b[c].U64() || !bytes.Equal(a[c].Blob(), b[c].Blob()) {
			return false
		}
	}
	return true
}

// checkCrashRow compares a recovered row against crashRowFor(g, j).
// A nil sent row recovers as all-NULL cells.
func checkCrashRow(t *testing.T, where string, got store.Row, g, j int) {
	t.Helper()
	want := crashRowFor(g, j)
	if len(got) != len(crashSchema()) {
		t.Fatalf("%s: client %d row %d has %d cells", where, g, j, len(got))
	}
	for c, cell := range got {
		w := store.Null()
		if c < len(want) {
			w = want[c]
		}
		if cell.Kind() != w.Kind() || cell.U64() != w.U64() || !bytes.Equal(cell.Blob(), w.Blob()) {
			t.Fatalf("%s: client %d row %d cell %d = %v, want %v", where, g, j, c, cell, w)
		}
	}
}

// TestWTServeCrashChild is the child half: it only runs re-executed by
// TestServerKill9Recovery with the env marker set.
func TestWTServeCrashChild(t *testing.T) {
	dir := os.Getenv("WTSERVE_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-test child; run via TestServerKill9Recovery")
	}
	st, err := store.Open(dir, &store.Options{Sync: true, FlushThreshold: 1 << 8, Columns: crashSchema()})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.ForStore(st), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the chosen port atomically (write + rename), then serve
	// until killed.
	addrFile := os.Getenv("WTSERVE_CRASH_ADDRFILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(l.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	select {} // never exit cleanly; the parent kills us
}

func TestServerKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	base := t.TempDir()
	dir := filepath.Join(base, "store")
	addrFile := filepath.Join(base, "addr")

	cmd := exec.Command(os.Args[0], "-test.run=^TestWTServeCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"WTSERVE_CRASH_DIR="+dir,
		"WTSERVE_CRASH_ADDRFILE="+addrFile,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	addr := waitAddrFile(t, addrFile)

	// Clients stream acknowledged batches until the parent kills the
	// child out from under them, so the kill lands mid batch stream.
	const clients = 3
	acked := make([][]string, clients)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			for j := 0; ; j += 4 {
				batch := make([]string, 4)
				rows := make([]store.Row, 4)
				for k := range batch {
					batch[k] = fmt.Sprintf("c%d/%06d", g, j+k)
					rows[k] = crashRowFor(g, j+k)
				}
				if err := c.AppendBatchRows(batch, rows); err != nil {
					return // the kill arrived
				}
				mu.Lock()
				acked[g] = append(acked[g], batch...)
				mu.Unlock()
			}
		}(g)
	}

	// Let every client bank some acknowledged batches, then kill -9.
	for deadline := time.Now().Add(10 * time.Second); ; {
		mu.Lock()
		enough := true
		for g := 0; g < clients; g++ {
			if len(acked[g]) < 40 {
				enough = false
			}
		}
		mu.Unlock()
		if enough {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("clients never banked enough acknowledged batches")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true
	wg.Wait()

	// Reopen the directory the kill left behind (the child's directory
	// lock died with it) and verify the durable-prefix contract.
	st, err := store.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sn := st.Snapshot()
	seq := sn.Slice(0, sn.Len())

	next := make([]int, clients)
	for pos, v := range seq {
		var g, j int
		if _, err := fmt.Sscanf(v, "c%d/%06d", &g, &j); err != nil || g < 0 || g >= clients {
			t.Fatalf("position %d holds unknown value %q", pos, v)
		}
		if j != next[g] {
			t.Fatalf("position %d: client %d value %q out of order (expected index %06d)", pos, g, v, next[g])
		}
		// The payload row rode the same WAL record: if the value
		// survived the kill, its row did too, cell for cell.
		checkCrashRow(t, "recovered store", sn.Row(pos), g, j)
		next[g]++
	}
	for g := 0; g < clients; g++ {
		if next[g] < len(acked[g]) {
			t.Fatalf("client %d: %d acknowledged appends, only %d survived the kill",
				g, len(acked[g]), next[g])
		}
	}

	// Differential reads on the recovered store vs a flat oracle over
	// what it actually holds.
	counts := map[string]int{}
	for _, v := range seq {
		counts[v]++
	}
	for g := 0; g < clients; g++ {
		probe := fmt.Sprintf("c%d/%06d", g, 0)
		if got := sn.Count(probe); got != counts[probe] {
			t.Fatalf("Count(%q) = %d, want %d", probe, got, counts[probe])
		}
		prefix := fmt.Sprintf("c%d/", g)
		if got := sn.CountPrefix(prefix); got != next[g] {
			t.Fatalf("CountPrefix(%q) = %d, want %d", prefix, got, next[g])
		}
	}
	for pos := 0; pos < len(seq); pos += 17 {
		if got := sn.Access(pos); got != seq[pos] {
			t.Fatalf("Access(%d) = %q, want %q", pos, got, seq[pos])
		}
	}
	t.Logf("killed mid-stream with %d+%d+%d acked; %d records survived",
		len(acked[0]), len(acked[1]), len(acked[2]), len(seq))
}

// waitAddrFile polls for a child's atomically-published address file.
func waitAddrFile(t *testing.T, path string) string {
	t.Helper()
	for i := 0; i < 400; i++ {
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 {
			return string(data)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("child never published %s", path)
	return ""
}

// TestWTServeFollowerChild is the follower half of the failover test:
// it opens its own store, follows the primary named in the env, and
// serves the read surface until the parent kills it.
func TestWTServeFollowerChild(t *testing.T) {
	dir := os.Getenv("WTSERVE_FOLLOW_DIR")
	if dir == "" {
		t.Skip("failover-test child; run via TestFailoverPromoteFollower")
	}
	st, err := store.Open(dir, &store.Options{FlushThreshold: 1 << 8, Columns: crashSchema()})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.ForStore(st), &server.Options{ReplHeartbeat: 100 * time.Millisecond})
	if err := srv.Follow(os.Getenv("WTSERVE_FOLLOW_PRIMARY"), "failover-follower"); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrFile := os.Getenv("WTSERVE_FOLLOW_ADDRFILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(l.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	select {} // never exit cleanly; the parent kills us
}

// TestFailoverPromoteFollower is the failover-grade crash test: a real
// primary process replicates to a real follower process while clients
// stream acknowledged batches and a confirmer tracks the follower's
// watermark (the read-your-writes confirmations). The parent SIGKILLs
// the primary mid-stream, promotes the follower over the wire, and
// verifies: every RYW-confirmed append survived on the promoted
// follower, the follower's content is an exact prefix of the dead
// primary's durable sequence, the full op surface agrees with a flat
// oracle, and the promoted server accepts writes.
func TestFailoverPromoteFollower(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	base := t.TempDir()
	primDir := filepath.Join(base, "primary")
	folDir := filepath.Join(base, "follower")
	primAddrFile := filepath.Join(base, "prim.addr")
	folAddrFile := filepath.Join(base, "fol.addr")

	primCmd := exec.Command(os.Args[0], "-test.run=^TestWTServeCrashChild$", "-test.v")
	primCmd.Env = append(os.Environ(),
		"WTSERVE_CRASH_DIR="+primDir,
		"WTSERVE_CRASH_ADDRFILE="+primAddrFile,
	)
	if err := primCmd.Start(); err != nil {
		t.Fatal(err)
	}
	primKilled := false
	defer func() {
		if !primKilled {
			primCmd.Process.Kill()
			primCmd.Wait()
		}
	}()
	primAddr := waitAddrFile(t, primAddrFile)

	folCmd := exec.Command(os.Args[0], "-test.run=^TestWTServeFollowerChild$", "-test.v")
	folCmd.Env = append(os.Environ(),
		"WTSERVE_FOLLOW_DIR="+folDir,
		"WTSERVE_FOLLOW_ADDRFILE="+folAddrFile,
		"WTSERVE_FOLLOW_PRIMARY="+primAddr,
	)
	if err := folCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		folCmd.Process.Kill()
		folCmd.Wait()
	}()
	folAddr := waitAddrFile(t, folAddrFile)

	// Writers stream acknowledged batches at the primary; the confirmer
	// rides the follower's watermark. Everything at or below `confirmed`
	// is a read-your-writes-confirmed append: a client was told the
	// follower holds it.
	const clients = 3
	acked := make([][]string, clients)
	var mu sync.Mutex
	var maxSeq, confirmed uint64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := server.Dial(primAddr)
			if err != nil {
				return
			}
			defer c.Close()
			for j := 0; ; j += 4 {
				batch := make([]string, 4)
				rows := make([]store.Row, 4)
				for k := range batch {
					batch[k] = fmt.Sprintf("c%d/%06d", g, j+k)
					rows[k] = crashRowFor(g, j+k)
				}
				seq, err := c.AppendBatchRowsSeq(batch, rows)
				if err != nil {
					return // the kill arrived
				}
				mu.Lock()
				acked[g] = append(acked[g], batch...)
				if seq > maxSeq {
					maxSeq = seq
				}
				mu.Unlock()
			}
		}(g)
	}
	stopConfirm := make(chan struct{})
	confirmDone := make(chan struct{})
	go func() {
		defer close(confirmDone)
		fc, err := server.Dial(folAddr)
		if err != nil {
			return
		}
		defer fc.Close()
		for {
			select {
			case <-stopConfirm:
				return
			default:
			}
			mu.Lock()
			target := maxSeq
			mu.Unlock()
			if target == 0 {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			wm, _, err := fc.WaitFor(target, 300*time.Millisecond)
			if err != nil {
				return
			}
			mu.Lock()
			if wm > confirmed {
				confirmed = wm
			}
			mu.Unlock()
		}
	}()

	// Kill only once every client has banked acknowledged batches AND
	// the follower has confirmed a healthy chunk of the stream — so the
	// zero-loss assertion below has teeth.
	for deadline := time.Now().Add(30 * time.Second); ; {
		mu.Lock()
		enough := confirmed >= 100
		for g := 0; g < clients; g++ {
			if len(acked[g]) < 40 {
				enough = false
			}
		}
		mu.Unlock()
		if enough {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("clients/confirmer never banked enough progress")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := primCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primCmd.Wait()
	primKilled = true
	wg.Wait()
	close(stopConfirm)
	<-confirmDone
	mu.Lock()
	confirmedWM := confirmed
	mu.Unlock()

	// Promote the surviving follower over the wire and read everything
	// it holds.
	fc := dial(t, folAddr)
	was, err := fc.Promote()
	if err != nil || !was {
		t.Fatalf("Promote = %v, %v; want true", was, err)
	}
	fst, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(fst.Len) < confirmedWM {
		t.Fatalf("promoted follower holds %d records, lost RYW-confirmed history up to %d",
			fst.Len, confirmedWM)
	}
	folSeq, err := fc.Slice(0, fst.Len)
	if err != nil {
		t.Fatal(err)
	}

	// The follower's content must be an exact prefix of the dead
	// primary's durable sequence: replication ships only committed
	// (WAL-synced) records.
	st, err := store.Open(primDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	psn := st.Snapshot()
	if psn.Len() < len(folSeq) {
		t.Fatalf("primary recovered %d records, follower holds %d", psn.Len(), len(folSeq))
	}
	for pos, v := range folSeq {
		if pv := psn.Access(pos); pv != v {
			t.Fatalf("position %d: follower %q, primary %q", pos, v, pv)
		}
	}

	// Per-client ordering: each client's surviving values are an
	// in-order prefix of what it sent. The payload rows replicated with
	// them: every follower row matches what the client attached, and is
	// byte-identical to the dead primary's durable row at that position.
	next := make([]int, clients)
	for pos, v := range folSeq {
		var g, j int
		if _, err := fmt.Sscanf(v, "c%d/%06d", &g, &j); err != nil || g < 0 || g >= clients {
			t.Fatalf("position %d holds unknown value %q", pos, v)
		}
		if j != next[g] {
			t.Fatalf("position %d: client %d value %q out of order (expected index %06d)", pos, g, v, next[g])
		}
		if pos%7 == 0 { // sampled: each probe is a round trip
			folRow, err := fc.Row(pos)
			if err != nil {
				t.Fatal(err)
			}
			checkCrashRow(t, "promoted follower", folRow, g, j)
			if primRow := psn.Row(pos); !sameRow(folRow, primRow) {
				t.Fatalf("position %d: follower row %v, primary row %v", pos, folRow, primRow)
			}
		}
		next[g]++
	}

	// Differential op surface on the promoted follower vs the flat
	// oracle of what it holds.
	probeOpSurface(t, fc, folSeq, 200)

	// The promoted follower is a real primary now: writes are accepted
	// and land right after the surviving history.
	seq2, err := fc.AppendSeq("promoted/write")
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != uint64(len(folSeq))+1 {
		t.Fatalf("post-promotion seq = %d, want %d", seq2, len(folSeq)+1)
	}
	if got, err := fc.Access(len(folSeq)); err != nil || got != "promoted/write" {
		t.Fatalf("Access(tail) = %q, %v", got, err)
	}
	t.Logf("killed primary with %d+%d+%d acked, %d RYW-confirmed; follower survived with %d records",
		len(acked[0]), len(acked[1]), len(acked[2]), confirmedWM, len(folSeq))
}
