package server_test

// The crash test re-executes this test binary as a real wtserve-style
// child process (Sync store + Server on loopback), lets concurrent
// clients append acknowledged batches, then SIGKILLs the child mid
// batch stream and reopens the directory in-process. The contract
// under test is the WAL-durable prefix: with Options.Sync every
// acknowledged append survives a kill -9, each client's surviving
// values are a prefix of what it sent (in order, possibly extended by
// an in-flight unacknowledged batch), and the recovered store answers
// the full op surface like a flat oracle over what it actually holds.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/server"
	"repro/store"
)

// TestWTServeCrashChild is the child half: it only runs re-executed by
// TestServerKill9Recovery with the env marker set.
func TestWTServeCrashChild(t *testing.T) {
	dir := os.Getenv("WTSERVE_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-test child; run via TestServerKill9Recovery")
	}
	st, err := store.Open(dir, &store.Options{Sync: true, FlushThreshold: 1 << 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.ForStore(st), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the chosen port atomically (write + rename), then serve
	// until killed.
	addrFile := os.Getenv("WTSERVE_CRASH_ADDRFILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(l.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	select {} // never exit cleanly; the parent kills us
}

func TestServerKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	base := t.TempDir()
	dir := filepath.Join(base, "store")
	addrFile := filepath.Join(base, "addr")

	cmd := exec.Command(os.Args[0], "-test.run=^TestWTServeCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"WTSERVE_CRASH_DIR="+dir,
		"WTSERVE_CRASH_ADDRFILE="+addrFile,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	var addr string
	for i := 0; i < 200; i++ {
		data, err := os.ReadFile(addrFile)
		if err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("child never published its address")
	}

	// Clients stream acknowledged batches until the parent kills the
	// child out from under them, so the kill lands mid batch stream.
	const clients = 3
	acked := make([][]string, clients)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			for j := 0; ; j += 4 {
				batch := make([]string, 4)
				for k := range batch {
					batch[k] = fmt.Sprintf("c%d/%06d", g, j+k)
				}
				if err := c.AppendBatch(batch); err != nil {
					return // the kill arrived
				}
				mu.Lock()
				acked[g] = append(acked[g], batch...)
				mu.Unlock()
			}
		}(g)
	}

	// Let every client bank some acknowledged batches, then kill -9.
	for deadline := time.Now().Add(10 * time.Second); ; {
		mu.Lock()
		enough := true
		for g := 0; g < clients; g++ {
			if len(acked[g]) < 40 {
				enough = false
			}
		}
		mu.Unlock()
		if enough {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("clients never banked enough acknowledged batches")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true
	wg.Wait()

	// Reopen the directory the kill left behind (the child's directory
	// lock died with it) and verify the durable-prefix contract.
	st, err := store.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sn := st.Snapshot()
	seq := sn.Slice(0, sn.Len())

	next := make([]int, clients)
	for pos, v := range seq {
		var g, j int
		if _, err := fmt.Sscanf(v, "c%d/%06d", &g, &j); err != nil || g < 0 || g >= clients {
			t.Fatalf("position %d holds unknown value %q", pos, v)
		}
		if j != next[g] {
			t.Fatalf("position %d: client %d value %q out of order (expected index %06d)", pos, g, v, next[g])
		}
		next[g]++
	}
	for g := 0; g < clients; g++ {
		if next[g] < len(acked[g]) {
			t.Fatalf("client %d: %d acknowledged appends, only %d survived the kill",
				g, len(acked[g]), next[g])
		}
	}

	// Differential reads on the recovered store vs a flat oracle over
	// what it actually holds.
	counts := map[string]int{}
	for _, v := range seq {
		counts[v]++
	}
	for g := 0; g < clients; g++ {
		probe := fmt.Sprintf("c%d/%06d", g, 0)
		if got := sn.Count(probe); got != counts[probe] {
			t.Fatalf("Count(%q) = %d, want %d", probe, got, counts[probe])
		}
		prefix := fmt.Sprintf("c%d/", g)
		if got := sn.CountPrefix(prefix); got != next[g] {
			t.Fatalf("CountPrefix(%q) = %d, want %d", prefix, got, next[g])
		}
	}
	for pos := 0; pos < len(seq); pos += 17 {
		if got := sn.Access(pos); got != seq[pos] {
			t.Fatalf("Access(%d) = %q, want %q", pos, got, seq[pos])
		}
	}
	t.Logf("killed mid-stream with %d+%d+%d acked; %d records survived",
		len(acked[0]), len(acked[1]), len(acked[2]), len(seq))
}
