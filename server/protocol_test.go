package server

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/wire"
	"repro/store"
)

// requestCases covers every opcode with representative arguments —
// shared by the round-trip test and the fuzz corpus.
func requestCases() []Request {
	return []Request{
		{Op: OpPing, Pos: ProtocolVersion},
		{Op: OpAppend, Value: "hello"},
		{Op: OpAppend, Value: ""},
		{Op: OpAppendBatch, Values: []string{"a", "", "longer/value/with/path", "a"}},
		{Op: OpAppendBatch, Values: []string{}},
		{Op: OpAccess, Pos: 12345},
		{Op: OpRank, Value: "v", Pos: 7},
		{Op: OpCount, Value: "vv"},
		{Op: OpSelect, Value: "x", Pos: 3},
		{Op: OpRankPrefix, Value: "/pre", Pos: 100},
		{Op: OpCountPrefix, Value: ""},
		{Op: OpSelectPrefix, Value: "p", Pos: 0},
		{Op: OpIterate, Cursor: 0, Pos: 10, Max: 256},
		{Op: OpIterate, Cursor: 99, Pos: 0, Max: 0},
		{Op: OpIteratePrefix, Value: "api/", Pos: 5, Max: 100},
		{Op: OpIteratePrefix, Value: "", Pos: 0, Max: 0},
		{Op: OpCursorClose, Cursor: 42},
		{Op: OpFlush},
		{Op: OpCompact},
		{Op: OpStats},
		{Op: OpSubscribe, Value: "follower-1", Cursor: 42, Max: 1},
		{Op: OpSubscribe, Value: "", Cursor: 0, Max: 0},
		{Op: OpReplWait, Cursor: 7777, Max: 500},
		{Op: OpPromote},
		{Op: OpAppend, Value: "v", Rows: []store.Row{{store.U64(7), store.Blob([]byte("meta")), store.Null()}}},
		{Op: OpAppendBatch, Values: []string{"a", "b"}, Rows: []store.Row{nil, {store.U64(1)}}},
		{Op: OpRow, Pos: 99},
		{Op: OpScanWhere, Value: "api/", Pos: 3, Max: 50, Preds: []store.Pred{
			{Col: 0, Op: store.PredGE, Val: 10}, {Col: 2, Op: store.PredNE, Val: 0}}},
		{Op: OpScanWhere, Value: "", Pos: 0, Max: 0},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range requestCases() {
		payload := EncodeRequest(want)
		got, err := ParseRequest(payload)
		if err != nil {
			t.Fatalf("op %d: parse: %v", want.Op, err)
		}
		// An empty batch decodes as a nil slice; normalize.
		if len(want.Values) == 0 {
			want.Values = nil
		}
		if len(got.Values) == 0 {
			got.Values = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("op %d: round trip %+v -> %+v", want.Op, want, got)
		}
	}
}

func TestParseRequestRejects(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},              // opcode zero is invalid
		{byte(opLimit)},  // one past the last opcode
		{OpAccess},       // missing position
		{OpRank, 1, 'v'}, // missing position after value
		append(EncodeRequest(Request{Op: OpStats}), 0xFF), // trailing junk
		{OpSubscribe, 1, 'f', 0, 2},                       // bootstrap flag must be 0 or 1
	}
	for i, payload := range cases {
		if _, err := ParseRequest(payload); err == nil {
			t.Errorf("case %d (% x): no error", i, payload)
		}
	}
	// A batch claiming more values than the payload can hold must error
	// before allocating.
	huge := []byte{OpAppendBatch, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := ParseRequest(huge); err == nil {
		t.Error("huge batch count: no error")
	}
	// A row claiming more cells than the cap must error before looping.
	hugeRow := []byte{OpAppend, 0 /* empty value */, 1 /* one row */, 0xFF, 0x7F /* 16383 cells */}
	if _, err := ParseRequest(hugeRow); err == nil {
		t.Error("huge row cell count: no error")
	}
	// An append carrying a row count that disagrees with its value count
	// must error.
	twoRows := []byte{OpAppend, 0, 2, 0, 0}
	if _, err := ParseRequest(twoRows); err == nil {
		t.Error("row/value count mismatch: no error")
	}
	// An unknown cell kind must error.
	badKind := []byte{OpAppend, 0, 1, 1 /* one cell */, 9 /* kind 9 */}
	if _, err := ParseRequest(badKind); err == nil {
		t.Error("unknown cell kind: no error")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := Stats{
		Len: 100, Distinct: 12, Height: 9, SizeBits: 4096, MemLen: 40, Shards: 4,
		GoMaxProcs: 8, NumCPU: 16,
		RouterBits: 9999, RouterFrozenChunks: 3, RouterTailChunks: 1,
		Watermark: 100, Following: "127.0.0.1:9000", Followers: 2,
		Gens: []GenStat{
			{ID: 3, Len: 30, SizeBits: 2048, FilterBits: 128, MinValue: "a", MaxValue: "zz"},
			{ID: 5, Len: 30, SizeBits: 2000, FilterBits: 120, MinValue: "", MaxValue: "q/x"},
		},
		Schema: []store.ColumnSpec{
			{Name: "score", Kind: store.ColUint64},
			{Name: "meta", Kind: store.ColBytes},
		},
	}
	w := wire.NewRawWriter()
	encodeStats(w, want)
	got := parseStats(wire.NewRawReader(w.Bytes()))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stats round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame round trip: got % x, want % x", got, want)
		}
	}
	// An implausible frame length is rejected before allocation.
	if _, err := readFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Error("oversized frame length: no error")
	}
}
