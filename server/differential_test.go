package server_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/server"
	"repro/store"
)

// TestDifferentialConcurrentClients is the ISSUE acceptance contract:
// N concurrent remote clients interleave AppendBatch with reads
// against a wtserve-style server; afterwards the server's answers on
// the full op surface must match a flat in-process oracle over the
// sequence the store actually committed, and that sequence must be a
// valid interleaving of every client's appends (per-client order
// preserved, nothing lost, nothing invented).
func TestDifferentialConcurrentClients(t *testing.T) {
	_, addr := startServer(t, 0, &store.Options{FlushThreshold: 1 << 9}, nil)

	const clients = 4
	const perClient = 300
	appended := make([][]string, clients)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		vals := make([]string, perClient)
		for j := range vals {
			vals[j] = fmt.Sprintf("c%d/%04d", g, j)
		}
		appended[g] = vals
		wg.Add(1)
		go func(g int, vals []string) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				errs[g] = err
				return
			}
			defer c.Close()
			r := rand.New(rand.NewSource(int64(g)))
			for len(vals) > 0 {
				n := 1 + r.Intn(16)
				if n > len(vals) {
					n = len(vals)
				}
				if err := c.AppendBatch(vals[:n]); err != nil {
					errs[g] = err
					return
				}
				vals = vals[n:]
				// Interleave reads; under concurrency only invariants
				// are checkable live — the differential pass below does
				// the exact comparison.
				if c2, err := c.Count(fmt.Sprintf("c%d/%04d", g, 0)); err != nil {
					errs[g] = err
					return
				} else if c2 != 1 {
					errs[g] = fmt.Errorf("client %d: Count of own unique value = %d", g, c2)
					return
				}
				if pos, ok, err := c.SelectPrefix(fmt.Sprintf("c%d/", g), 0); err != nil {
					errs[g] = err
					return
				} else if !ok {
					errs[g] = fmt.Errorf("client %d: own prefix missing (pos %d)", g, pos)
					return
				}
			}
			errs[g] = nil
		}(g, vals)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", g, err)
		}
	}

	c := dial(t, addr)
	if err := c.Flush(); err != nil { // exercise the post-flush read path too
		t.Fatal(err)
	}
	seq, err := c.Slice(0, clients*perClient)
	if err != nil {
		t.Fatal(err)
	}
	checkInterleaving(t, seq, appended)
	diffReads(t, c, seq)
}

// checkInterleaving verifies seq is an interleaving of the per-client
// append streams: restricted to one client it equals that client's
// values in order.
func checkInterleaving(t *testing.T, seq []string, appended [][]string) {
	t.Helper()
	total := 0
	for _, vals := range appended {
		total += len(vals)
	}
	if len(seq) != total {
		t.Fatalf("sequence has %d elements, want %d", len(seq), total)
	}
	next := make([]int, len(appended))
	for pos, v := range seq {
		var g int
		if _, err := fmt.Sscanf(v, "c%d/", &g); err != nil || g < 0 || g >= len(appended) {
			t.Fatalf("position %d holds unknown value %q", pos, v)
		}
		if next[g] >= len(appended[g]) || appended[g][next[g]] != v {
			t.Fatalf("position %d: %q out of client %d's order (next expected %q)",
				pos, v, g, appended[g][next[g]])
		}
		next[g]++
	}
}

// diffReads compares the remote answers against a flat oracle over seq
// on randomized probes across the whole op surface.
func diffReads(t *testing.T, c *server.Client, seq []string) {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	n := len(seq)
	for trial := 0; trial < 200; trial++ {
		pos := r.Intn(n)
		v := seq[r.Intn(n)]
		pre := v[:1+r.Intn(len(v)-1)]

		if got, err := c.Access(pos); err != nil || got != seq[pos] {
			t.Fatalf("Access(%d) = %q, %v, want %q", pos, got, err, seq[pos])
		}
		wantRank := 0
		for _, s := range seq[:pos] {
			if s == v {
				wantRank++
			}
		}
		if got, err := c.Rank(v, pos); err != nil || got != wantRank {
			t.Fatalf("Rank(%q,%d) = %d, %v, want %d", v, pos, got, err, wantRank)
		}
		wantCount := 0
		wantPrefCount := 0
		for _, s := range seq {
			if s == v {
				wantCount++
			}
			if strings.HasPrefix(s, pre) {
				wantPrefCount++
			}
		}
		if got, err := c.Count(v); err != nil || got != wantCount {
			t.Fatalf("Count(%q) = %d, %v, want %d", v, got, err, wantCount)
		}
		if got, err := c.CountPrefix(pre); err != nil || got != wantPrefCount {
			t.Fatalf("CountPrefix(%q) = %d, %v, want %d", pre, got, err, wantPrefCount)
		}
		idx := r.Intn(wantCount)
		seen, wantPos := 0, -1
		for p, s := range seq {
			if s == v {
				if seen == idx {
					wantPos = p
					break
				}
				seen++
			}
		}
		if got, ok, err := c.Select(v, idx); err != nil || !ok || got != wantPos {
			t.Fatalf("Select(%q,%d) = %d, %v, %v, want %d", v, idx, got, ok, err, wantPos)
		}
		pidx := r.Intn(wantPrefCount)
		seen, wantPos = 0, -1
		for p, s := range seq {
			if strings.HasPrefix(s, pre) {
				if seen == pidx {
					wantPos = p
					break
				}
				seen++
			}
		}
		if got, ok, err := c.SelectPrefix(pre, pidx); err != nil || !ok || got != wantPos {
			t.Fatalf("SelectPrefix(%q,%d) = %d, %v, %v, want %d", pre, pidx, got, ok, err, wantPos)
		}
	}
}

// TestDifferentialSharded runs a smaller version of the same contract
// over a sharded backend (cross-shard snapshots + group commit through
// multi-shard batches).
func TestDifferentialSharded(t *testing.T) {
	_, addr := startServer(t, 3, &store.Options{FlushThreshold: 1 << 8}, nil)
	const clients = 3
	const perClient = 150
	appended := make([][]string, clients)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		vals := make([]string, perClient)
		for j := range vals {
			vals[j] = fmt.Sprintf("c%d/%04d", g, j)
		}
		appended[g] = vals
		wg.Add(1)
		go func(g int, vals []string) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				errs[g] = err
				return
			}
			defer c.Close()
			for len(vals) > 0 {
				n := 1 + g*3
				if n > len(vals) {
					n = len(vals)
				}
				if err := c.AppendBatch(vals[:n]); err != nil {
					errs[g] = err
					return
				}
				vals = vals[n:]
			}
		}(g, vals)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", g, err)
		}
	}
	c := dial(t, addr)
	seq, err := c.Slice(0, clients*perClient)
	if err != nil {
		t.Fatal(err)
	}
	checkInterleaving(t, seq, appended)
	diffReads(t, c, seq)
}
