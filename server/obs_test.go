package server_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/server"
)

// TestOpMetrics fetches the engine-wide metrics snapshot over the
// binary protocol and checks the series every layer contributes — the
// same text the HTTP gateway serves on /metrics.
func TestOpMetrics(t *testing.T) {
	_, addr := startServer(t, 0, nil, nil)
	c := dial(t, addr)
	if err := c.AppendBatch([]string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Count("a"); err != nil {
		t.Fatal(err)
	}
	text, err := c.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE wt_server_requests_total counter",
		`wt_server_op_seconds_bucket{op="append_batch",le=`,
		`wt_server_op_seconds_bucket{op="count",le=`,
		"wt_batcher_batch_size_count",
		"wt_wal_fsync_seconds_count",
		"wt_server_conns_active",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("OpMetrics snapshot missing %q", want)
		}
	}
}

// TestStatsRuntimeInfo checks the Stats reply carries the server's
// runtime sizing, so remote clients can judge throughput numbers.
func TestStatsRuntimeInfo(t *testing.T) {
	_, addr := startServer(t, 0, nil, nil)
	c := dial(t, addr)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.GoMaxProcs < 1 || st.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("GoMaxProcs = %d, want %d", st.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if st.NumCPU < 1 || st.NumCPU != runtime.NumCPU() {
		t.Errorf("NumCPU = %d, want %d", st.NumCPU, runtime.NumCPU())
	}
}

// TestSlowOpLog sets a threshold every op clears and checks the log
// line names the op, its key shape and the snapshot fingerprint.
func TestSlowOpLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	_, addr := startServer(t, 0, nil, &server.Options{
		SlowOp: time.Nanosecond,
		SlowOpLog: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	c := dial(t, addr)
	if err := c.Append("slow/key"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rank("slow/key", 1); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"slow op", "rank", `"slow/key"`, "snapshot fp"} {
		if !strings.Contains(joined, want) {
			t.Errorf("slow-op log missing %q in:\n%s", want, joined)
		}
	}
}

// TestMetricNamesLint walks every name registered in the process-wide
// registry (this test binary links the store and server metric sets)
// and asserts the wt_ naming invariant plus the presence of each
// layer's keystone series.
func TestMetricNamesLint(t *testing.T) {
	names := obs.Default().Names()
	if len(names) == 0 {
		t.Fatal("default registry is empty")
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if !obs.MetricName.MatchString(n) {
			t.Errorf("metric name %q does not match %s", n, obs.MetricName)
		}
		seen[n] = true
	}
	for _, want := range []string{
		"wt_wal_fsync_seconds",
		"wt_flush_seconds",
		"wt_compact_seconds",
		"wt_filter_negative_total",
		"wt_mmap_mapped_bytes",
		"wt_server_op_seconds",
		"wt_batcher_batch_size",
		"wt_cache_hits_total",
		"wt_cursors_live",
	} {
		if !seen[want] {
			t.Errorf("registry missing keystone series %s", want)
		}
	}
}
