package server

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// smet is the server package's metric set, registered once in the
// process-wide obs registry next to the store's (see store/metrics.go
// for the rationale: idempotent registration, engine-wide series).
// The legacy exported Metrics struct stays as the expvar/test surface;
// smet is the Prometheus one.
var smet = newServerMetrics(obs.Default())

// serverMetrics holds the pre-resolved handles the serving paths
// record into.
type serverMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	conns    *obs.Counter
	// opSeconds is indexed by opcode; slot 0 catches unparseable
	// requests. Children are resolved here, once, so the per-request
	// record is a plain array load.
	opSeconds [opLimit]*obs.Histogram

	appendValues  *obs.Counter
	groupCommits  *obs.Counter
	commitValues  *obs.Counter
	coalesced     *obs.Counter
	stalls        *obs.Counter
	batchSize     *obs.Histogram
	commitSeconds *obs.Histogram

	cacheHits          *obs.Counter
	cacheMisses        *obs.Counter
	cacheEvictions     *obs.Counter
	cacheInvalidations *obs.Counter

	cursorsOpened  *obs.Counter
	cursorsExpired *obs.Counter
	cursorSweeps   *obs.Counter

	// Replication: the primary's shipping side, the follower's applying
	// side, and the churn between them.
	replShippedRecords *obs.Counter
	replShippedBytes   *obs.Counter
	replSnapBytes      *obs.Counter
	replAcks           *obs.Counter
	replEvictedSubs    *obs.Counter
	replReconnects     *obs.Counter
	replAppliedRecords *obs.Counter
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		requests: r.NewCounter("wt_server_requests_total",
			"Binary-protocol requests served (including failed ones)."),
		errors: r.NewCounter("wt_server_errors_total",
			"Requests answered with an error status (decode failures and panics)."),
		conns: r.NewCounter("wt_server_conns_total",
			"Binary-protocol connections accepted."),

		appendValues: r.NewCounter("wt_server_append_values_total",
			"Values accepted on the write path (before batching)."),
		groupCommits: r.NewCounter("wt_batcher_commits_total",
			"Group commits issued by the committer."),
		commitValues: r.NewCounter("wt_batcher_commit_values_total",
			"Values carried by group commits."),
		coalesced: r.NewCounter("wt_batcher_coalesced_waiters_total",
			"Waiters whose append rode another waiter's commit."),
		stalls: r.NewCounter("wt_batcher_stalls_total",
			"Append submissions that blocked on a full commit queue (backpressure)."),
		batchSize: r.NewHistogram("wt_batcher_batch_size",
			"Values per group commit.", 1),
		commitSeconds: r.NewHistogram("wt_batcher_commit_seconds",
			"Latency of the backend AppendBatch call under each group commit.", 1e-9),

		cacheHits: r.NewCounter("wt_cache_hits_total",
			"Result-cache lookups answered without touching a snapshot."),
		cacheMisses: r.NewCounter("wt_cache_misses_total",
			"Result-cache lookups that fell through to the snapshot."),
		cacheEvictions: r.NewCounter("wt_cache_evictions_total",
			"Result-cache entries dropped by LRU capacity."),
		cacheInvalidations: r.NewCounter("wt_cache_invalidations_total",
			"Evicted entries keyed to a superseded snapshot fingerprint."),

		cursorsOpened: r.NewCounter("wt_cursors_opened_total",
			"Iteration cursors opened."),
		cursorsExpired: r.NewCounter("wt_cursors_expired_total",
			"Cursors dropped by lease expiry."),
		cursorSweeps: r.NewCounter("wt_cursor_sweeps_total",
			"Janitor sweeps over the cursor table."),

		replShippedRecords: r.NewCounter("wt_repl_shipped_records_total",
			"Records shipped to replication subscribers (live and catch-up frames)."),
		replShippedBytes: r.NewCounter("wt_repl_shipped_bytes_total",
			"Framed bytes of record frames shipped to replication subscribers."),
		replSnapBytes: r.NewCounter("wt_repl_snapshot_bytes_total",
			"Snapshot bootstrap bytes shipped to replication subscribers."),
		replAcks: r.NewCounter("wt_repl_acks_total",
			"Watermark acknowledgements received from followers."),
		replEvictedSubs: r.NewCounter("wt_repl_evicted_subscribers_total",
			"Subscribers evicted because their connection could not keep up with commits."),
		replReconnects: r.NewCounter("wt_repl_reconnects_total",
			"Follower reconnect attempts after a broken replication stream."),
		replAppliedRecords: r.NewCounter("wt_repl_applied_records_total",
			"Records applied from a replication stream (bootstrap and live)."),
	}

	ops := r.NewHistogramVec("wt_server_op_seconds",
		"Binary-protocol request latency by op (parse to response encode).", "op", 1e-9)
	for op := 0; op < int(opLimit); op++ {
		m.opSeconds[op] = ops.With(opName(byte(op)))
	}

	r.NewGaugeFunc("wt_server_conns_active",
		"Binary-protocol connections currently being served.",
		func() int64 {
			var n int64
			for _, s := range liveServers.all() {
				n += s.metrics.ConnsActive.Load()
			}
			return n
		})
	r.NewGaugeFunc("wt_batcher_queue_depth",
		"Append submissions waiting for the committer.",
		func() int64 {
			var n int64
			for _, s := range liveServers.all() {
				n += int64(len(s.appendCh))
			}
			return n
		})
	r.NewGaugeFunc("wt_cursors_live",
		"Iteration cursors currently holding a lease (and pinning a snapshot).",
		func() int64 {
			var n int64
			for _, s := range liveServers.all() {
				n += int64(s.cursors.len())
			}
			return n
		})
	r.NewGaugeFunc("wt_repl_followers",
		"Distinct follower ids currently subscribed across live servers.",
		func() int64 {
			var n int64
			for _, s := range liveServers.all() {
				n += int64(s.repl.followerCount())
			}
			return n
		})
	r.NewGaugeFunc("wt_repl_lag_records",
		"Replication lag in records: watermark behind the primary head (followers), slowest acked watermark behind the head (primaries).",
		func() int64 {
			var n int64
			for _, s := range liveServers.all() {
				n += s.replLagRecords()
			}
			return n
		})
	r.NewGaugeFunc("wt_repl_watermark",
		"Committed replication watermark (head sequence number) summed across live servers.",
		func() int64 {
			var n int64
			for _, s := range liveServers.all() {
				n += int64(s.repl.watermark())
			}
			return n
		})
	r.NewGaugeFunc("wt_cache_entries",
		"Entries resident in the result cache.",
		func() int64 {
			var n int64
			for _, s := range liveServers.all() {
				if s.cache != nil {
					n += int64(s.cache.len())
				}
			}
			return n
		})

	return m
}

// observeOp records one request's latency under its opcode's series.
func (m *serverMetrics) observeOp(op byte, ns int64) {
	if int(op) >= len(m.opSeconds) {
		op = 0
	}
	m.opSeconds[op].Observe(ns)
}

// opNames maps opcodes to their Prometheus label values (and slow-op
// log names). Slot 0 is the unparseable-request series.
var opNames = [opLimit]string{
	0:               "invalid",
	OpPing:          "ping",
	OpAppend:        "append",
	OpAppendBatch:   "append_batch",
	OpAccess:        "access",
	OpRank:          "rank",
	OpCount:         "count",
	OpSelect:        "select",
	OpRankPrefix:    "rank_prefix",
	OpCountPrefix:   "count_prefix",
	OpSelectPrefix:  "select_prefix",
	OpIterate:       "iterate",
	OpCursorClose:   "cursor_close",
	OpFlush:         "flush",
	OpCompact:       "compact",
	OpStats:         "stats",
	OpMetrics:       "metrics",
	OpIteratePrefix: "iterate_prefix",
	OpSubscribe:     "subscribe",
	OpReplWait:      "repl_wait",
	OpPromote:       "promote",
	OpRow:           "row",
	OpScanWhere:     "scan_where",
}

// opName returns the label value for an opcode ("invalid" for anything
// outside the table).
func opName(op byte) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "invalid"
}

// liveServers tracks running Servers for the gauge funcs above, the
// same live-instance pattern as store.liveStores. Servers register in
// New and deregister in Shutdown.
var liveServers = &serverSet{m: make(map[*Server]struct{})}

type serverSet struct {
	mu sync.Mutex
	m  map[*Server]struct{}
}

func (ss *serverSet) add(s *Server)    { ss.mu.Lock(); ss.m[s] = struct{}{}; ss.mu.Unlock() }
func (ss *serverSet) remove(s *Server) { ss.mu.Lock(); delete(ss.m, s); ss.mu.Unlock() }

func (ss *serverSet) all() []*Server {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]*Server, 0, len(ss.m))
	for s := range ss.m {
		out = append(out, s)
	}
	return out
}

// keyShape renders a request's argument shape for the slow-op log:
// enough to find the offending key class without dumping whole values
// into logs.
func keyShape(req Request) string {
	switch req.Op {
	case OpAppend, OpRank, OpCount, OpSelect, OpRankPrefix, OpCountPrefix, OpSelectPrefix:
		v := req.Value
		if len(v) > 32 {
			return fmt.Sprintf("%q…(len=%d)", v[:32], len(v))
		}
		return fmt.Sprintf("%q", v)
	case OpAppendBatch:
		return fmt.Sprintf("batch(n=%d)", len(req.Values))
	case OpAccess, OpRow:
		return fmt.Sprintf("pos=%d", req.Pos)
	case OpScanWhere:
		p := req.Value
		if len(p) > 32 {
			p = p[:32] + "…"
		}
		return fmt.Sprintf("prefix=%q preds=%d from=%d max=%d", p, len(req.Preds), req.Pos, req.Max)
	case OpIterate:
		return fmt.Sprintf("cursor=%d start=%d max=%d", req.Cursor, req.Pos, req.Max)
	case OpIteratePrefix:
		p := req.Value
		if len(p) > 32 {
			p = p[:32] + "…"
		}
		return fmt.Sprintf("prefix=%q from=%d max=%d", p, req.Pos, req.Max)
	case OpCursorClose:
		return fmt.Sprintf("cursor=%d", req.Cursor)
	default:
		return "-"
	}
}
