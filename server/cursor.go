package server

import (
	"fmt"
	"sync"
	"time"
)

// A cursor pins one snapshot across Iterate calls: the client walks a
// stable view of the sequence in batches, isolated from concurrent
// appends, without the server holding any lock between calls (snapshots
// are immutable). Cursors are leased — each use renews a TTL, and a
// janitor drops expired ones so abandoned clients cannot pin snapshots
// (and their sealed memtables) forever.
type cursor struct {
	snap    Snap
	next    int
	expires time.Time
}

type cursorTable struct {
	mu     sync.Mutex
	ttl    time.Duration
	nextID uint64
	m      map[uint64]*cursor
}

func newCursorTable(ttl time.Duration) *cursorTable {
	return &cursorTable{ttl: ttl, m: make(map[uint64]*cursor)}
}

// open registers a new cursor and returns its id (never 0 — 0 is the
// protocol's "open a new cursor" sentinel).
func (t *cursorTable) open(snap Snap, next int) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	t.m[id] = &cursor{snap: snap, next: next, expires: time.Now().Add(t.ttl)}
	return id
}

// take looks up a live cursor and removes it from the table while its
// batch is served — a concurrent request for the same cursor errors
// instead of racing. The caller must put it back (or drop it).
func (t *cursorTable) take(id uint64) (*cursor, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.m[id]
	if !ok {
		return nil, fmt.Errorf("server: unknown or expired cursor %d", id)
	}
	if time.Now().After(c.expires) {
		delete(t.m, id)
		return nil, fmt.Errorf("server: unknown or expired cursor %d", id)
	}
	delete(t.m, id)
	return c, nil
}

// put returns a taken cursor to the table with a renewed lease.
func (t *cursorTable) put(id uint64, c *cursor) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c.expires = time.Now().Add(t.ttl)
	t.m[id] = c
}

// close drops a cursor; closing an unknown id is a no-op (it may have
// expired already).
func (t *cursorTable) close(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, id)
}

// sweep drops every expired cursor and reports how many went.
func (t *cursorTable) sweep(now time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, c := range t.m {
		if now.After(c.expires) {
			delete(t.m, id)
			n++
		}
	}
	return n
}

// len reports the live cursor count.
func (t *cursorTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
