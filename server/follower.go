package server

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	wavelettrie "repro"
	"repro/internal/wire"
)

// FollowerWriteError is the refusal a replication follower answers
// writes with: followers are read-only, and the error names the
// primary so clients (and the HTTP gateway, via a 421 redirect) can
// re-aim.
type FollowerWriteError struct{ Primary string }

// Error renders the refusal.
func (e *FollowerWriteError) Error() string {
	return fmt.Sprintf("server: read-only follower (writes go to the primary at %s)", e.Primary)
}

// followSession is one Follow invocation's lifetime: its stop channel,
// the currently dialed connection (closed to interrupt a blocking
// read), and the last primary head heard (for lag).
type followSession struct {
	addr string
	id   string
	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex
	conn net.Conn

	primaryHead atomic.Uint64
}

// setConn records the live connection unless the session has stopped
// (in which case the caller must close it).
func (fs *followSession) setConn(c net.Conn) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	select {
	case <-fs.stop:
		return false
	default:
	}
	fs.conn = c
	return true
}

func (fs *followSession) closeConn() {
	fs.mu.Lock()
	if fs.conn != nil {
		fs.conn.Close()
	}
	fs.mu.Unlock()
}

func (fs *followSession) stopped() bool {
	select {
	case <-fs.stop:
		return true
	default:
		return false
	}
}

// Follow turns this server into a replication follower of the primary
// at addr: it subscribes (bootstrapping from a snapshot when the local
// store is empty), replays the WAL stream into its own backend, and
// keeps reconnecting with backoff until Promote or Shutdown. While
// following, the full read surface stays up but writes are refused
// with a FollowerWriteError. id names the follower in the primary's
// watermark book; empty picks a host-and-pid default.
func (s *Server) Follow(addr, id string) error {
	if addr == "" {
		return errors.New("server: Follow needs a primary address")
	}
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "follower"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	fs := &followSession{addr: addr, id: id, stop: make(chan struct{}), done: make(chan struct{})}
	if !s.follow.CompareAndSwap(nil, fs) {
		return errors.New("server: already following a primary")
	}
	go s.followLoop(fs)
	return nil
}

// Following returns the primary address this server follows, or ""
// when it is itself a primary.
func (s *Server) Following() string {
	if fs := s.follow.Load(); fs != nil {
		return fs.addr
	}
	return ""
}

// Promote ends follower mode: the stream is torn down, no further
// records are applied, and writes are accepted from the next request
// on. Already-subscribed downstream followers are unaffected — the hub
// keeps publishing local commits to them. Reports whether the server
// was following (false means it already was a primary; the call is a
// safe no-op then).
func (s *Server) Promote() bool {
	fs := s.follow.Swap(nil)
	if fs == nil {
		return false
	}
	close(fs.stop)
	fs.closeConn()
	<-fs.done
	return true
}

// followLoop runs the subscribe-replay-reconnect cycle until the
// session stops.
func (s *Server) followLoop(fs *followSession) {
	defer close(fs.done)
	backoff := 100 * time.Millisecond
	for {
		if fs.stopped() {
			return
		}
		err := s.followOnce(fs)
		if fs.stopped() {
			return
		}
		smet.replReconnects.Inc()
		if err != nil {
			s.logf("server: replication stream from %s: %v (reconnecting in %s)", fs.addr, err, backoff)
		}
		select {
		case <-fs.stop:
			return
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

// logf routes follower-loop messages through the slow-op logger so
// tests can capture them; nil falls back to the standard logger.
func (s *Server) logf(format string, args ...any) {
	logf := s.opts.SlowOpLog
	if logf == nil {
		logf = log.Printf
	}
	logf(format, args...)
}

// followOnce runs one connection's worth of following: dial,
// handshake, optional snapshot bootstrap, then the record loop. A nil
// return means the session stopped; any error means reconnect.
func (s *Server) followOnce(fs *followSession) error {
	conn, err := net.DialTimeout("tcp", fs.addr, 10*time.Second)
	if err != nil {
		return err
	}
	if !fs.setConn(conn) {
		conn.Close()
		return nil
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	idle := replIdleTimeout(s.opts.ReplHeartbeat)

	roundTrip := func(payload []byte) (*wire.Reader, error) {
		conn.SetWriteDeadline(time.Now().Add(time.Minute))
		if err := writeFrame(bw, payload); err != nil {
			return nil, err
		}
		if err := bw.Flush(); err != nil {
			return nil, err
		}
		conn.SetReadDeadline(time.Now().Add(time.Minute))
		resp, err := readFrame(br)
		if err != nil {
			return nil, err
		}
		r := wire.NewRawReader(resp)
		switch status := r.Byte(); status {
		case statusOK:
			return r, nil
		case statusErr:
			msg := r.Str()
			if err := r.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("server: primary refused: %s", msg)
		default:
			return nil, fmt.Errorf("server: bad response status %d", status)
		}
	}

	r, err := roundTrip(EncodeRequest(Request{Op: OpPing, Pos: ProtocolVersion}))
	if err != nil {
		return err
	}
	if v := r.Uvarint(); r.Err() == nil && v != ProtocolVersion {
		return fmt.Errorf("server: primary speaks protocol %d, want %d", v, ProtocolVersion)
	}

	from := s.repl.watermark()
	r, err = roundTrip(EncodeSubscribe(SubscribeReq{FollowerID: fs.id, FromSeq: from, Boot: from == 0}))
	if err != nil {
		return err
	}
	primaryLen := r.Uvarint()
	boot := r.Byte() == 1
	if err := r.Err(); err != nil {
		return err
	}
	fs.primaryHead.Store(primaryLen)

	sendAck := func() error {
		conn.SetWriteDeadline(time.Now().Add(time.Minute))
		if err := writeFrame(bw, EncodeWALFrame(WALFrame{Kind: FrameAck, Seq: s.repl.watermark()})); err != nil {
			return err
		}
		return bw.Flush()
	}
	next := func() (WALFrame, error) {
		conn.SetReadDeadline(time.Now().Add(idle))
		payload, err := readFrame(br)
		if err != nil {
			return WALFrame{}, err
		}
		return ParseWALFrame(payload)
	}

	if boot {
		if err := s.receiveSnapshot(next); err != nil {
			return err
		}
		if err := sendAck(); err != nil {
			return err
		}
	}

	for {
		f, err := next()
		if err != nil {
			if fs.stopped() {
				return nil
			}
			return err
		}
		switch f.Kind {
		case FrameRecords:
			if fs.stopped() {
				return nil // promoted mid-frame: do not apply
			}
			if err := s.applyRecords(f); err != nil {
				return err
			}
			if err := sendAck(); err != nil {
				return err
			}
		case FrameHeartbeat:
			fs.primaryHead.Store(f.Seq)
			if err := sendAck(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("server: unexpected replication frame kind %d", f.Kind)
		}
	}
}

// receiveSnapshot consumes a snapshot bootstrap (begin, chunks, end),
// loads it and replays it into the local backend as ordinary commits —
// so a chained subscriber of THIS server sees the records too.
func (s *Server) receiveSnapshot(next func() (WALFrame, error)) error {
	if wm := s.repl.watermark(); wm != 0 {
		return fmt.Errorf("server: snapshot bootstrap into a store with %d records", wm)
	}
	f, err := next()
	if err != nil {
		return err
	}
	if f.Kind != FrameSnapBegin {
		return fmt.Errorf("server: expected snapshot begin, got frame kind %d", f.Kind)
	}
	want := f.Seq
	var data []byte
	for {
		f, err := next()
		if err != nil {
			return err
		}
		if f.Kind == FrameSnapChunk {
			data = append(data, f.Chunk...)
			continue
		}
		if f.Kind == FrameSnapEnd {
			break
		}
		return fmt.Errorf("server: unexpected frame kind %d inside snapshot", f.Kind)
	}
	frozen, err := wavelettrie.LoadFrozen(data)
	if err != nil {
		return fmt.Errorf("server: snapshot bootstrap: %w", err)
	}
	if got := uint64(frozen.Len()); got != want {
		return fmt.Errorf("server: snapshot carries %d records, begin frame said %d", got, want)
	}
	const applyBatch = 4096
	batch := make([]string, 0, applyBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := s.commitPublish(batch, nil); err != nil {
			return err
		}
		smet.replAppliedRecords.Add(int64(len(batch)))
		batch = batch[:0]
		return nil
	}
	var applyErr error
	frozen.Iterate(0, frozen.Len(), func(_ int, v string) bool {
		batch = append(batch, v)
		if len(batch) >= applyBatch {
			applyErr = flush()
			return applyErr == nil
		}
		return true
	})
	if applyErr != nil {
		return applyErr
	}
	if err := flush(); err != nil {
		return err
	}
	if got := s.repl.watermark(); got != want {
		return fmt.Errorf("server: snapshot bootstrap applied %d records, want %d", got, want)
	}
	return nil
}

// applyRecords replays one records frame into the local backend after
// validating it lands exactly on the watermark.
func (s *Server) applyRecords(f WALFrame) error {
	if err := checkStreamSeq(s.repl.watermark(), f.Seq, len(f.Values)); err != nil {
		return err
	}
	if _, err := s.commitPublish(f.Values, f.Rows); err != nil {
		return err
	}
	smet.replAppliedRecords.Add(int64(len(f.Values)))
	return nil
}

// checkStreamSeq validates a records frame against the follower's
// watermark. The stream contract is exact contiguity: a frame starting
// above the watermark means records were lost (a gap — the paramount
// replication failure), one starting below means the primary resent
// history the follower already applied; either way the stream cannot
// be trusted and the connection must be dropped, never papered over.
func checkStreamSeq(watermark, frameStart uint64, n int) error {
	if n == 0 {
		return errors.New("server: empty records frame")
	}
	if frameStart > watermark {
		return fmt.Errorf("server: replication gap: frame starts at %d, watermark is %d", frameStart, watermark)
	}
	if frameStart < watermark {
		return fmt.Errorf("server: replication regression: frame starts at %d, watermark is %d", frameStart, watermark)
	}
	return nil
}
