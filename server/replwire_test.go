package server

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"

	"repro/store"
)

// frameCases covers every frame kind with representative contents —
// shared by the round-trip test and the fuzz corpus.
func frameCases() []WALFrame {
	return []WALFrame{
		{Kind: FrameRecords, Seq: 0, Values: []string{"a"}},
		{Kind: FrameRecords, Seq: 1 << 40, Values: []string{"", "x", strings.Repeat("v", 300)}},
		{Kind: FrameRecords, Seq: 7, Values: []string{"a", "b"},
			Rows: []store.Row{{store.U64(42), store.Blob([]byte("m")), store.Null()}, nil}},
		{Kind: FrameSnapBegin, Seq: 12345},
		{Kind: FrameSnapChunk, Chunk: []byte{0, 1, 2, 0xFF}},
		{Kind: FrameSnapChunk, Chunk: []byte{}},
		{Kind: FrameSnapEnd},
		{Kind: FrameHeartbeat, Seq: 99},
		{Kind: FrameAck, Seq: 7},
	}
}

func TestWALFrameRoundTrip(t *testing.T) {
	for _, want := range frameCases() {
		got, err := ParseWALFrame(EncodeWALFrame(want))
		if err != nil {
			t.Fatalf("kind %d: parse: %v", want.Kind, err)
		}
		if len(want.Values) == 0 {
			want.Values = nil
		}
		if len(got.Values) == 0 {
			got.Values = nil
		}
		if len(want.Chunk) == 0 {
			want.Chunk = nil
		}
		if len(got.Chunk) == 0 {
			got.Chunk = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kind %d: round trip %+v -> %+v", want.Kind, want, got)
		}
	}
}

func TestParseWALFrameRejects(t *testing.T) {
	records := EncodeWALFrame(WALFrame{Kind: FrameRecords, Seq: 5, Values: []string{"abc", "de"}})

	flipped := append([]byte(nil), records...)
	flipped[len(flipped)-1] ^= 0x01 // corrupt the body under the CRC

	badCRC := append([]byte(nil), records...)
	badCRC[2] ^= 0xFF // corrupt the checksum itself

	cases := [][]byte{
		nil,
		{},
		{0},                      // kind zero is invalid
		{frameKindLimit},         // one past the last kind
		{FrameRecords},           // truncated before the CRC
		{FrameRecords, 1, 2},     // still truncated
		records[:len(records)-1], // torn tail: CRC over a shorter body mismatches
		flipped,
		badCRC,
		append(append([]byte(nil), EncodeWALFrame(WALFrame{Kind: FrameSnapEnd})...), 0xAB), // trailing junk
		{FrameAck}, // missing sequence number
		// A records frame claiming more values than the payload holds
		// must error before allocating (CRC is over the lying body).
		EncodeWALFrame(WALFrame{Kind: FrameRecords, Seq: 0, Values: nil})[:0], // placeholder replaced below
	}
	// Build the lying-count case by hand: kind, a correct CRC over a
	// body whose value count (2^60) exceeds the payload.
	lyingBody := []byte{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	lying := append([]byte{FrameRecords}, binary.LittleEndian.AppendUint32(nil, crc32.ChecksumIEEE(lyingBody))...)
	cases[len(cases)-1] = append(lying, lyingBody...)

	for i, payload := range cases {
		if _, err := ParseWALFrame(payload); err == nil {
			t.Errorf("case %d (% x): no error", i, payload)
		}
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	for _, want := range []SubscribeReq{
		{FollowerID: "f1", FromSeq: 0, Boot: true},
		{FollowerID: "host-123", FromSeq: 1 << 33, Boot: false},
	} {
		got, err := ParseSubscribe(EncodeSubscribe(want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
	}
	// A non-subscribe request is refused by ParseSubscribe.
	if _, err := ParseSubscribe(EncodeRequest(Request{Op: OpStats})); err == nil {
		t.Error("ParseSubscribe accepted a stats request")
	}
}

func TestCheckStreamSeq(t *testing.T) {
	if err := checkStreamSeq(10, 10, 3); err != nil {
		t.Fatalf("contiguous frame rejected: %v", err)
	}
	if err := checkStreamSeq(10, 11, 3); err == nil {
		t.Fatal("gap accepted")
	}
	if err := checkStreamSeq(10, 9, 3); err == nil {
		t.Fatal("regression accepted")
	}
	if err := checkStreamSeq(10, 10, 0); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestWALFrameEncodePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown kind")
		}
	}()
	EncodeWALFrame(WALFrame{Kind: 0xEE})
}

func TestWALFrameChunkAliasing(t *testing.T) {
	// The parsed chunk must not alias the input buffer: the frame reader
	// reuses its payload slice across frames.
	payload := EncodeWALFrame(WALFrame{Kind: FrameSnapChunk, Chunk: []byte{1, 2, 3}})
	f, err := ParseWALFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		payload[i] = 0xFF
	}
	if !bytes.Equal(f.Chunk, []byte{1, 2, 3}) {
		t.Fatalf("chunk aliased the payload: % x", f.Chunk)
	}
}
