package server

import (
	"reflect"
	"testing"
)

// FuzzParseRequest hammers the server's trust boundary: arbitrary
// bytes must decode to a request or an error, never panic, never
// allocate absurdly — and every valid encoding must re-encode to the
// same bytes (the decoder accepts nothing the encoder cannot produce).
func FuzzParseRequest(f *testing.F) {
	for _, req := range requestCases() {
		f.Add(EncodeRequest(req))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add([]byte{OpAppendBatch, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same request
		// (byte equality is too strong: uvarints admit redundant
		// encodings a fuzzer will find).
		again, err := ParseRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("re-parse of %+v: %v", req, err)
		}
		if len(req.Values) == 0 {
			req.Values = nil
		}
		if len(again.Values) == 0 {
			again.Values = nil
		}
		if !reflect.DeepEqual(again, req) {
			t.Fatalf("re-parse of %+v gave %+v", req, again)
		}
	})
}

// FuzzParseWALFrame hammers the follower's trust boundary: torn
// frames, flipped bits, lying counts and bad checksums must error,
// never panic — and every accepted frame must re-encode and re-parse
// to the same frame.
func FuzzParseWALFrame(f *testing.F) {
	for _, fr := range frameCases() {
		f.Add(EncodeWALFrame(fr))
	}
	f.Add([]byte{})
	f.Add([]byte{FrameRecords, 0, 0, 0, 0})
	f.Add([]byte{FrameAck, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ParseWALFrame(data)
		if err != nil {
			return
		}
		again, err := ParseWALFrame(EncodeWALFrame(fr))
		if err != nil {
			t.Fatalf("re-parse of %+v: %v", fr, err)
		}
		if len(fr.Values) == 0 {
			fr.Values = nil
		}
		if len(again.Values) == 0 {
			again.Values = nil
		}
		if len(fr.Chunk) == 0 {
			fr.Chunk = nil
		}
		if len(again.Chunk) == 0 {
			again.Chunk = nil
		}
		if !reflect.DeepEqual(again, fr) {
			t.Fatalf("re-parse of %+v gave %+v", fr, again)
		}
	})
}

// FuzzParseSubscribe pins the subscribe handshake decoder: arbitrary
// bytes error or decode to a subscribe whose re-encoding round-trips;
// sequence regressions in the flag byte (anything but 0/1) are errors.
func FuzzParseSubscribe(f *testing.F) {
	f.Add(EncodeSubscribe(SubscribeReq{FollowerID: "f1", FromSeq: 0, Boot: true}))
	f.Add(EncodeSubscribe(SubscribeReq{FollowerID: "h-9", FromSeq: 1 << 50, Boot: false}))
	f.Add([]byte{OpSubscribe, 1, 'x', 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		sub, err := ParseSubscribe(data)
		if err != nil {
			return
		}
		again, err := ParseSubscribe(EncodeSubscribe(sub))
		if err != nil {
			t.Fatalf("re-parse of %+v: %v", sub, err)
		}
		if again != sub {
			t.Fatalf("re-parse of %+v gave %+v", sub, again)
		}
	})
}
