package server

import (
	"reflect"
	"testing"
)

// FuzzParseRequest hammers the server's trust boundary: arbitrary
// bytes must decode to a request or an error, never panic, never
// allocate absurdly — and every valid encoding must re-encode to the
// same bytes (the decoder accepts nothing the encoder cannot produce).
func FuzzParseRequest(f *testing.F) {
	for _, req := range requestCases() {
		f.Add(EncodeRequest(req))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add([]byte{OpAppendBatch, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same request
		// (byte equality is too strong: uvarints admit redundant
		// encodings a fuzzer will find).
		again, err := ParseRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("re-parse of %+v: %v", req, err)
		}
		if len(req.Values) == 0 {
			req.Values = nil
		}
		if len(again.Values) == 0 {
			again.Values = nil
		}
		if !reflect.DeepEqual(again, req) {
			t.Fatalf("re-parse of %+v gave %+v", req, again)
		}
	})
}
