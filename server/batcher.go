package server

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/store"
)

// The group-commit write path: connection handlers never touch the
// store's append lock themselves. They enqueue their values on a
// channel and wait; a single committer goroutine drains whatever has
// accumulated — across any number of connections — into one
// Backend.AppendBatch call, which is one lock acquisition, one WAL
// write and at most one fsync no matter how many clients are inside
// the batch. Under load the batch grows and the per-append cost of
// the log falls toward zero; when idle a lone append commits
// immediately (the committer never waits for company).
//
// Backpressure is the channel itself: it holds at most
// Options.MaxBatch pending enqueues, so writers stall once the store
// falls behind instead of growing an unbounded queue.

// appendReq is one handler's pending append: its values, optional
// payload rows (nil, or one per value), and the channel its commit
// result comes back on.
type appendReq struct {
	vals []string
	rows []store.Row
	resc chan commitResult
}

// commitResult is what a waiter gets back: the global sequence number
// its batch is covered by (the new head — its ack token for
// read-your-writes sessions) or the commit error.
type commitResult struct {
	seq uint64
	err error
}

// committer is the group-commit loop. It exits when the append channel
// closes (drain: handlers have all finished, nothing can enqueue).
func (s *Server) committer() {
	defer s.wgCommit.Done()
	for first := range s.appendCh {
		vals := first.vals
		rows := first.rows
		waiters := append(make([]chan commitResult, 0, 8), first.resc)
		// Coalesce everything already queued, up to the batch cap. Rows
		// stay position-aligned with vals: the rows slice is materialized
		// lazily the first time any request in the batch carries one, with
		// nil (all-NULL) entries padding the row-less requests.
	drain:
		for len(vals) < s.opts.MaxBatch {
			select {
			case req, ok := <-s.appendCh:
				if !ok {
					break drain
				}
				if req.rows != nil && rows == nil {
					rows = make([]store.Row, len(vals))
				}
				if rows != nil {
					if req.rows != nil {
						rows = append(rows, req.rows...)
					} else {
						rows = append(rows, make([]store.Row, len(req.vals))...)
					}
				}
				vals = append(vals, req.vals...)
				waiters = append(waiters, req.resc)
			default:
				break drain
			}
		}
		sp := obs.DefaultTracer.Start("group_commit")
		t0 := time.Now()
		seq, err := s.commitPublish(vals, rows)
		smet.commitSeconds.ObserveSince(t0)
		smet.groupCommits.Inc()
		smet.commitValues.Add(int64(len(vals)))
		smet.batchSize.Observe(int64(len(vals)))
		s.metrics.Batches.Add(1)
		s.metrics.BatchedAppends.Add(int64(len(vals)))
		if len(waiters) > 1 {
			s.metrics.CoalescedCommits.Add(int64(len(waiters) - 1))
			smet.coalesced.Add(int64(len(waiters) - 1))
		}
		if sp.Active() {
			sp.End(fmt.Sprintf("values=%d waiters=%d", len(vals), len(waiters)))
		}
		for _, c := range waiters {
			c <- commitResult{seq: seq, err: err}
		}
	}
}

// submitAppend routes values (and optional payload rows — nil, or one
// per value) through the group-commit path (or straight to
// commitPublish when group commit is disabled) and waits for the
// commit. Returns the global sequence number the write is covered by —
// the client's read-your-writes token. Writes are refused on a
// replication follower; the primary owns sequence assignment. Rows are
// validated against the schema here, before enqueueing — one client's
// malformed row must not fail the whole coalesced batch it would have
// shared with other connections.
func (s *Server) submitAppend(vals []string, rows []store.Row) (uint64, error) {
	if len(vals) == 0 {
		return s.repl.watermark(), nil
	}
	if fs := s.follow.Load(); fs != nil {
		return 0, &FollowerWriteError{Primary: fs.addr}
	}
	if rows != nil {
		if len(rows) != len(vals) {
			return 0, fmt.Errorf("server: %d rows for %d values", len(rows), len(vals))
		}
		schema := s.b.Schema()
		for _, row := range rows {
			if err := store.ValidateRow(schema, row); err != nil {
				return 0, err
			}
		}
	}
	s.metrics.Appends.Add(int64(len(vals)))
	smet.appendValues.Add(int64(len(vals)))
	if s.opts.DisableGroupCommit {
		// Still one commitPublish per request — sequence assignment and
		// fan-out need the hub even without coalescing.
		return s.commitPublish(vals, rows)
	}
	req := appendReq{vals: vals, rows: rows, resc: make(chan commitResult, 1)}
	// The read-locked gate pairs with Shutdown: once every connection
	// handler has exited, Shutdown flips sendOff under the write lock
	// and closes the channel — so a submit either lands before the
	// close (and is committed by the drain) or is refused, never sent
	// on a closed channel.
	s.sendMu.RLock()
	if s.sendOff {
		s.sendMu.RUnlock()
		return 0, errDraining
	}
	// A full queue means the store has fallen behind the writers — the
	// send below still blocks (that IS the backpressure), the counter
	// just makes the stall visible.
	select {
	case s.appendCh <- req:
	default:
		smet.stalls.Inc()
		s.appendCh <- req
	}
	s.sendMu.RUnlock()
	res := <-req.resc
	return res.seq, res.err
}
