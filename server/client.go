package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
	"repro/store"
)

// Client speaks the binary protocol to a wtserve server over one
// connection. All methods are safe for concurrent use (requests are
// serialized on the connection). Query methods mirror the store's
// snapshot surface; each call is served from a snapshot the server pins
// for that request, and Scan pins one snapshot across its whole walk.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// lastAck is the highest append ack sequence number this client has
	// seen — its read-your-writes session token. See LastAcked.
	lastAck atomic.Uint64
}

// Dial connects to a wtserve binary-protocol address and verifies the
// protocol version with a Ping.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if err := c.Ping(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ServerError is an error the server answered with (as opposed to a
// transport failure): the connection is still usable.
type ServerError struct{ Msg string }

// Error returns the server's message.
func (e *ServerError) Error() string { return e.Msg }

// roundTrip sends one request and decodes the response body into
// decode (which may be nil for empty bodies).
func (c *Client) roundTrip(req Request, decode func(r *wire.Reader) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.bw, EncodeRequest(req)); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	payload, err := readFrame(c.br)
	if err != nil {
		return err
	}
	r := wire.NewRawReader(payload)
	switch status := r.Byte(); status {
	case statusOK:
	case statusErr:
		msg := r.Str()
		if err := r.Err(); err != nil {
			return err
		}
		return &ServerError{Msg: msg}
	default:
		return fmt.Errorf("server: bad response status %d", status)
	}
	if decode != nil {
		if err := decode(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// Ping verifies connectivity and protocol compatibility.
func (c *Client) Ping() error {
	return c.roundTrip(Request{Op: OpPing, Pos: ProtocolVersion}, func(r *wire.Reader) error {
		if v := r.Uvarint(); r.Err() == nil && v != ProtocolVersion {
			return fmt.Errorf("server: speaks protocol %d, want %d", v, ProtocolVersion)
		}
		return nil
	})
}

// Append adds v at the end of the sequence. The call returns once the
// server has committed it (grouped with concurrent appends).
func (c *Client) Append(v string) error {
	_, err := c.AppendSeq(v)
	return err
}

// AppendSeq is Append returning the global sequence number the write
// is covered by: once any server's watermark reaches it (WaitFor),
// reads there see this write. The client also remembers it as its
// session token (LastAcked).
func (c *Client) AppendSeq(v string) (uint64, error) {
	var seq uint64
	err := c.roundTrip(Request{Op: OpAppend, Value: v}, func(r *wire.Reader) error {
		seq = r.Uvarint()
		return nil
	})
	if err == nil {
		c.noteAck(seq)
	}
	return seq, err
}

// AppendBatch adds vs at the end of the sequence as one atomic,
// order-preserving batch — the efficient ingest path: one round trip
// and (server-side) one group commit for the whole batch.
func (c *Client) AppendBatch(vs []string) error {
	_, err := c.AppendBatchSeq(vs)
	return err
}

// AppendBatchSeq is AppendBatch returning the covering sequence
// number; see AppendSeq.
func (c *Client) AppendBatchSeq(vs []string) (uint64, error) {
	if len(vs) == 0 {
		return c.lastAck.Load(), nil
	}
	var seq uint64
	err := c.roundTrip(Request{Op: OpAppendBatch, Values: vs}, func(r *wire.Reader) error {
		r.Uvarint() // accepted count, fixed by the request itself
		seq = r.Uvarint()
		return nil
	})
	if err == nil {
		c.noteAck(seq)
	}
	return seq, err
}

// AppendRow is Append with a columnar payload row attached (nil row =
// all-NULL). The server validates the row against the store's pinned
// schema before committing.
func (c *Client) AppendRow(v string, row store.Row) error {
	_, err := c.AppendRowSeq(v, row)
	return err
}

// AppendRowSeq is AppendRow returning the covering sequence number;
// see AppendSeq.
func (c *Client) AppendRowSeq(v string, row store.Row) (uint64, error) {
	var rows []store.Row
	if row != nil {
		rows = []store.Row{row}
	}
	var seq uint64
	err := c.roundTrip(Request{Op: OpAppend, Value: v, Rows: rows}, func(r *wire.Reader) error {
		seq = r.Uvarint()
		return nil
	})
	if err == nil {
		c.noteAck(seq)
	}
	return seq, err
}

// AppendBatchRows is AppendBatch with payload rows attached — rows is
// nil or exactly one (possibly nil) row per value.
func (c *Client) AppendBatchRows(vs []string, rows []store.Row) error {
	_, err := c.AppendBatchRowsSeq(vs, rows)
	return err
}

// AppendBatchRowsSeq is AppendBatchRows returning the covering
// sequence number; see AppendSeq.
func (c *Client) AppendBatchRowsSeq(vs []string, rows []store.Row) (uint64, error) {
	if len(vs) == 0 {
		return c.lastAck.Load(), nil
	}
	if rows != nil && len(rows) != len(vs) {
		return 0, fmt.Errorf("server: %d rows for %d values", len(rows), len(vs))
	}
	var seq uint64
	err := c.roundTrip(Request{Op: OpAppendBatch, Values: vs, Rows: rows}, func(r *wire.Reader) error {
		r.Uvarint() // accepted count, fixed by the request itself
		seq = r.Uvarint()
		return nil
	})
	if err == nil {
		c.noteAck(seq)
	}
	return seq, err
}

// noteAck advances the session token to seq if it is newer.
func (c *Client) noteAck(seq uint64) {
	for {
		cur := c.lastAck.Load()
		if seq <= cur || c.lastAck.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// LastAcked returns the client's read-your-writes session token: the
// highest sequence number its acknowledged appends are covered by.
// Hand it to WaitFor on a follower connection (or to the HTTP
// gateway's X-WT-Consistency-Token header) before reading to guarantee
// the session's own writes are visible there.
func (c *Client) LastAcked() uint64 { return c.lastAck.Load() }

// WaitFor blocks until the server's watermark covers seq or the
// timeout lapses, returning the watermark and whether seq is covered.
// The server bounds one wait at 30s; callers needing more re-issue.
func (c *Client) WaitFor(seq uint64, timeout time.Duration) (uint64, bool, error) {
	ms := int(timeout / time.Millisecond)
	if ms < 0 {
		ms = 0
	}
	var wm uint64
	var ok bool
	err := c.roundTrip(Request{Op: OpReplWait, Cursor: seq, Max: ms}, func(r *wire.Reader) error {
		ok = r.Byte() == 1
		wm = r.Uvarint()
		return nil
	})
	return wm, ok, err
}

// Promote asks a follower to stop following and accept writes.
// Reports whether the server was in fact following (false: it already
// was a primary).
func (c *Client) Promote() (bool, error) {
	var was bool
	err := c.roundTrip(Request{Op: OpPromote}, func(r *wire.Reader) error {
		was = r.Byte() == 1
		return nil
	})
	return was, err
}

// Access returns the string at position pos.
func (c *Client) Access(pos int) (string, error) {
	var out string
	err := c.roundTrip(Request{Op: OpAccess, Pos: pos}, func(r *wire.Reader) error {
		out = r.Str()
		return nil
	})
	return out, err
}

// Row returns the columnar payload row at position pos (nil when the
// store pins no schema or the position's payload is all-NULL).
func (c *Client) Row(pos int) (store.Row, error) {
	var row store.Row
	err := c.roundTrip(Request{Op: OpRow, Pos: pos}, func(r *wire.Reader) error {
		row = parseRow(r)
		return nil
	})
	return row, err
}

// Schema returns the server store's pinned column schema (nil when the
// store carries no columnar attachments).
func (c *Client) Schema() ([]store.ColumnSpec, error) {
	st, err := c.Stats()
	if err != nil {
		return nil, err
	}
	return st.Schema, nil
}

func (c *Client) num(op byte, v string, pos int) (int, error) {
	var out int
	err := c.roundTrip(Request{Op: op, Value: v, Pos: pos}, func(r *wire.Reader) error {
		out = int(r.Uvarint())
		return nil
	})
	return out, err
}

func (c *Client) optPos(op byte, v string, idx int) (int, bool, error) {
	var pos int
	var ok bool
	err := c.roundTrip(Request{Op: op, Value: v, Pos: idx}, func(r *wire.Reader) error {
		if r.Byte() == 1 {
			pos, ok = int(r.Uvarint()), true
		}
		return nil
	})
	return pos, ok, err
}

// Rank counts occurrences of v in positions [0, pos).
func (c *Client) Rank(v string, pos int) (int, error) { return c.num(OpRank, v, pos) }

// Count returns the total number of occurrences of v.
func (c *Client) Count(v string) (int, error) { return c.num(OpCount, v, 0) }

// Select returns the position of the idx-th (0-based) occurrence of v.
func (c *Client) Select(v string, idx int) (int, bool, error) { return c.optPos(OpSelect, v, idx) }

// RankPrefix counts elements in [0, pos) having byte prefix p.
func (c *Client) RankPrefix(p string, pos int) (int, error) { return c.num(OpRankPrefix, p, pos) }

// CountPrefix returns the total number of elements with byte prefix p.
func (c *Client) CountPrefix(p string) (int, error) { return c.num(OpCountPrefix, p, 0) }

// SelectPrefix returns the position of the idx-th element with byte
// prefix p.
func (c *Client) SelectPrefix(p string, idx int) (int, bool, error) {
	return c.optPos(OpSelectPrefix, p, idx)
}

// Flush seals the server store's memtable into a frozen generation.
func (c *Client) Flush() error { return c.roundTrip(Request{Op: OpFlush}, nil) }

// Compact merges the server store's generations.
func (c *Client) Compact() error { return c.roundTrip(Request{Op: OpCompact}, nil) }

// Stats returns the store's current shape.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.roundTrip(Request{Op: OpStats}, func(r *wire.Reader) error {
		st = parseStats(r)
		return nil
	})
	return st, err
}

// MetricsText returns the server's metrics as Prometheus text
// exposition — byte-identical to what the HTTP gateway's /metrics
// serves, but over the binary protocol, so a deployment without the
// gateway is still observable.
func (c *Client) MetricsText() (string, error) {
	var out string
	err := c.roundTrip(Request{Op: OpMetrics}, func(r *wire.Reader) error {
		out = r.Str()
		return nil
	})
	return out, err
}

// Scan streams the elements of positions [start, start+n) in order,
// calling fn for each; n < 0 streams to the end. The whole walk is
// served from one snapshot the server pins under a leased cursor, so
// concurrent appends never shift the view. Returning false from fn
// stops the scan (the cursor is closed server-side). batch sizes the
// per-round-trip value count; 0 uses the server's default.
func (c *Client) Scan(start, n, batch int, fn func(pos int, v string) bool) error {
	if n == 0 {
		return nil
	}
	if batch <= 0 {
		batch = 1024
	}
	remaining := n // negative = to the end
	req := Request{Op: OpIterate, Pos: start}
	for {
		req.Max = batch
		if remaining >= 0 && remaining < batch {
			req.Max = remaining
		}
		var vals []string
		var done bool
		var pos int
		err := c.roundTrip(req, func(r *wire.Reader) error {
			req.Cursor = r.Uvarint()
			done = r.Byte() == 1
			pos = int(r.Uvarint())
			k := r.Len()
			vals = vals[:0]
			for i := 0; i < k && r.Err() == nil; i++ {
				vals = append(vals, r.Str())
			}
			return nil
		})
		if err != nil {
			return err
		}
		for i, v := range vals {
			if !fn(pos+i, v) {
				if req.Cursor != 0 {
					return c.roundTrip(Request{Op: OpCursorClose, Cursor: req.Cursor}, nil)
				}
				return nil
			}
		}
		if remaining > 0 {
			remaining -= len(vals)
		}
		if done {
			return nil
		}
		if remaining == 0 {
			if req.Cursor != 0 {
				return c.roundTrip(Request{Op: OpCursorClose, Cursor: req.Cursor}, nil)
			}
			return nil
		}
	}
}

// ScanPrefix streams the elements with byte prefix p in ascending
// position order, starting at the from-th (0-based) match and visiting
// at most n matches; n < 0 streams to the end. fn receives the global
// match index, the element's position and its value, and returns false
// to stop. Pagination is stateless — the sequence is append-only, so a
// match index permanently names the same element and each round trip
// just echoes the next index; the server seeks to it through the
// router's frozen prefix sums instead of holding a cursor. batch sizes
// the per-round-trip match count; 0 uses the server's default.
func (c *Client) ScanPrefix(p string, from, n, batch int, fn func(idx, pos int, v string) bool) error {
	if n == 0 || from < 0 {
		return nil
	}
	if batch <= 0 {
		batch = 1024
	}
	remaining := n // negative = to the end
	req := Request{Op: OpIteratePrefix, Value: p, Pos: from}
	for {
		req.Max = batch
		if remaining >= 0 && remaining < batch {
			req.Max = remaining
		}
		type match struct {
			pos int
			val string
		}
		var matches []match
		var done bool
		var start int
		err := c.roundTrip(req, func(r *wire.Reader) error {
			done = r.Byte() == 1
			start = int(r.Uvarint())
			k := r.Len()
			for i := 0; i < k && r.Err() == nil; i++ {
				matches = append(matches, match{pos: int(r.Uvarint()), val: r.Str()})
			}
			return nil
		})
		if err != nil {
			return err
		}
		for i, m := range matches {
			if !fn(start+i, m.pos, m.val) {
				return nil
			}
		}
		if done {
			return nil
		}
		if remaining > 0 {
			if remaining -= len(matches); remaining == 0 {
				return nil
			}
		}
		if len(matches) == 0 {
			return nil // defensive: a non-done empty batch must not spin
		}
		req.Pos = start + len(matches)
	}
}

// ScanWhere streams the elements matching byte prefix p AND every
// numeric predicate, in ascending position order, starting at the
// from-th (0-based) match and visiting at most n matches; n < 0
// streams to the end. fn receives the global match index, the
// element's position, its value and its payload row, and returns false
// to stop. Pagination is stateless like ScanPrefix. batch sizes the
// per-round-trip match count; 0 uses the server's default.
func (c *Client) ScanWhere(p string, preds []store.Pred, from, n, batch int, fn func(idx, pos int, v string, row store.Row) bool) error {
	if n == 0 || from < 0 {
		return nil
	}
	if batch <= 0 {
		batch = 1024
	}
	remaining := n // negative = to the end
	req := Request{Op: OpScanWhere, Value: p, Pos: from, Preds: preds}
	for {
		req.Max = batch
		if remaining >= 0 && remaining < batch {
			req.Max = remaining
		}
		type match struct {
			pos int
			val string
			row store.Row
		}
		var matches []match
		var done bool
		var start int
		err := c.roundTrip(req, func(r *wire.Reader) error {
			done = r.Byte() == 1
			start = int(r.Uvarint())
			k := r.Len()
			matches = matches[:0]
			for i := 0; i < k && r.Err() == nil; i++ {
				matches = append(matches, match{pos: int(r.Uvarint()), val: r.Str(), row: parseRow(r)})
			}
			return nil
		})
		if err != nil {
			return err
		}
		for i, m := range matches {
			if !fn(start+i, m.pos, m.val, m.row) {
				return nil
			}
		}
		if done {
			return nil
		}
		if remaining > 0 {
			if remaining -= len(matches); remaining == 0 {
				return nil
			}
		}
		if len(matches) == 0 {
			return nil // defensive: a non-done empty batch must not spin
		}
		req.Pos = start + len(matches)
	}
}

// Slice returns the elements of positions [l, r) as a fresh slice.
func (c *Client) Slice(l, r int) ([]string, error) {
	if r < l {
		return nil, fmt.Errorf("server: Slice(%d,%d) inverted", l, r)
	}
	out := make([]string, 0, r-l)
	err := c.Scan(l, r-l, 0, func(_ int, v string) bool {
		out = append(out, v)
		return true
	})
	return out, err
}
