package server

import (
	"container/list"
	"sync"
)

// resultCache is a sharded LRU over point-query results, keyed by
// (snapshot fingerprint, op, string argument, position). The
// fingerprint is the whole invalidation story: any append, flush or
// compaction produces a fresh fingerprint, so entries for superseded
// states are simply never looked up again and age out of the LRU —
// no write-path hook, no epoch counter, no lock shared with writers.
//
// The cache is sharded by key hash so hot read traffic from many
// connections does not serialize on one mutex.
type resultCache struct {
	shards [cacheShards]cacheShard
}

const cacheShards = 16

// cacheKey identifies one point query against one snapshot state.
type cacheKey struct {
	fp  uint64
	op  byte
	arg string
	pos int
}

// cacheVal carries any point-query result shape: counts and positions
// in num/ok, Access values in str.
type cacheVal struct {
	num int
	ok  bool
	str string
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	m   map[cacheKey]*list.Element
	lru list.List // front = most recent; values are *cacheEntry
}

type cacheEntry struct {
	key cacheKey
	val cacheVal
}

// newResultCache returns a cache holding about entries results in
// total, or nil when entries <= 0 (caching disabled).
func newResultCache(entries int) *resultCache {
	if entries <= 0 {
		return nil
	}
	per := (entries + cacheShards - 1) / cacheShards
	c := &resultCache{}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].m = make(map[cacheKey]*list.Element)
	}
	return c
}

func (c *resultCache) shard(k cacheKey) *cacheShard {
	h := k.fp ^ uint64(k.op)<<56 ^ uint64(uint32(k.pos))
	for i := 0; i < len(k.arg) && i < 8; i++ {
		h ^= uint64(k.arg[i]) << (8 * i)
	}
	h ^= h >> 33
	h *= fnvPrime64
	return &c.shards[h%cacheShards]
}

const fnvPrime64 = 1099511628211

func (c *resultCache) get(k cacheKey) (cacheVal, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[k]
	if !ok {
		return cacheVal{}, false
	}
	s.lru.MoveToFront(e)
	return e.Value.(*cacheEntry).val, true
}

func (c *resultCache) put(k cacheKey, v cacheVal) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[k]; ok {
		e.Value.(*cacheEntry).val = v
		s.lru.MoveToFront(e)
		return
	}
	s.m[k] = s.lru.PushFront(&cacheEntry{key: k, val: v})
	if s.lru.Len() > s.cap {
		last := s.lru.Back()
		s.lru.Remove(last)
		evicted := last.Value.(*cacheEntry).key
		delete(s.m, evicted)
		smet.cacheEvictions.Inc()
		if evicted.fp != k.fp {
			// The victim was keyed to a superseded snapshot — the LRU
			// doubling as the invalidation sweep the fingerprint scheme
			// never has to run eagerly.
			smet.cacheInvalidations.Inc()
		}
	}
}

// len reports the resident entry count (tests and metrics).
func (c *resultCache) len() int {
	total := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		total += c.shards[i].lru.Len()
		c.shards[i].mu.Unlock()
	}
	return total
}
