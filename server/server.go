package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/store"
)

// Options tune a Server. The zero value (or a nil pointer) selects the
// defaults below.
type Options struct {
	// MaxConns bounds the concurrently served connections. Further
	// accepts wait for a slot — backpressure at the door instead of an
	// unbounded goroutine pile. Default 256.
	MaxConns int
	// CacheEntries sizes the result cache (total entries across its
	// shards). 0 selects the default 4096; negative disables caching.
	CacheEntries int
	// DisableGroupCommit routes every append straight to the store
	// instead of through the coalescing committer — one lock and WAL
	// write per request. For benchmarks and comparison; leave it off.
	DisableGroupCommit bool
	// MaxBatch caps the values in one group commit (and the pending
	// append queue length). Default 1024.
	MaxBatch int
	// CursorTTL is the idle lease on an Iterate cursor; every use
	// renews it. Default 30s.
	CursorTTL time.Duration
	// MaxIterBatch caps the values returned by one Iterate call (also
	// the default when the client asks for 0). Default 4096.
	MaxIterBatch int
	// SlowOp is the latency threshold above which a binary-protocol
	// request is logged, naming the op, its key shape and the pinned
	// snapshot's fingerprint. 0 disables the slow-op log.
	SlowOp time.Duration
	// SlowOpLog receives the slow-op lines; nil selects log.Printf.
	// Mostly for tests and callers with structured logging.
	SlowOpLog func(format string, args ...any)
	// ReplHeartbeat is the idle cadence of replication heartbeat frames
	// (primary liveness and follower lag measurement). Default 2s.
	ReplHeartbeat time.Duration
	// ReplRetainBytes caps the WAL bytes retained for replication
	// catch-up (per shard on a sharded backend), so a dead follower
	// can never pin unbounded disk. Default 64 MiB; negative disables
	// retention entirely — superseded logs are deleted at flush and
	// catch-up is served from snapshots alone.
	ReplRetainBytes int64
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.MaxConns <= 0 {
		out.MaxConns = 256
	}
	if out.CacheEntries == 0 {
		out.CacheEntries = 4096
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = 1024
	}
	if out.CursorTTL <= 0 {
		out.CursorTTL = 30 * time.Second
	}
	if out.MaxIterBatch <= 0 {
		out.MaxIterBatch = 4096
	}
	if out.ReplHeartbeat <= 0 {
		out.ReplHeartbeat = 2 * time.Second
	}
	if out.ReplRetainBytes == 0 {
		out.ReplRetainBytes = 64 << 20
	}
	return out
}

// Metrics is the server's operational counter set, updated with atomic
// increments on the serving paths and exported by the HTTP gateway's
// /metrics endpoint (and by expvar when the caller publishes it).
type Metrics struct {
	ConnsActive      atomic.Int64
	ConnsTotal       atomic.Int64
	Requests         atomic.Int64
	Errors           atomic.Int64
	Appends          atomic.Int64 // values accepted on the write path
	Batches          atomic.Int64 // group commits issued
	BatchedAppends   atomic.Int64 // values carried by those commits
	CoalescedCommits atomic.Int64 // waiters who shared another's commit
	CacheHits        atomic.Int64
	CacheMisses      atomic.Int64
	CursorsOpened    atomic.Int64
	CursorsExpired   atomic.Int64
}

// Snapshot renders the counters as a plain map — the /metrics payload.
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"conns_active":      m.ConnsActive.Load(),
		"conns_total":       m.ConnsTotal.Load(),
		"requests":          m.Requests.Load(),
		"errors":            m.Errors.Load(),
		"appends":           m.Appends.Load(),
		"batches":           m.Batches.Load(),
		"batched_appends":   m.BatchedAppends.Load(),
		"coalesced_commits": m.CoalescedCommits.Load(),
		"cache_hits":        m.CacheHits.Load(),
		"cache_misses":      m.CacheMisses.Load(),
		"cursors_opened":    m.CursorsOpened.Load(),
		"cursors_expired":   m.CursorsExpired.Load(),
	}
}

// errDraining reports a write refused because the server is shutting
// down.
var errDraining = errors.New("server: draining")

// Server serves a store.Store or store.ShardedStore over the binary
// protocol (Serve) and the HTTP/JSON gateway (HTTPHandler). The write
// path is group-committed, reads are served from per-request pinned
// snapshots with a fingerprint-keyed result cache in front, and
// Shutdown drains gracefully: in-flight requests finish, queued appends
// commit, then connections close. Construct with New; the Server does
// not own the store — closing it after Shutdown is the caller's job.
type Server struct {
	b    Backend
	opts Options

	cache   *resultCache
	cursors *cursorTable

	appendCh chan appendReq
	sendMu   sync.RWMutex // gates appendCh against close during drain
	sendOff  bool         // guarded by sendMu: no further submits

	drainCh  chan struct{}
	draining atomic.Bool

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}

	wgConns  sync.WaitGroup
	wgCommit sync.WaitGroup

	repl   *replHub
	follow atomic.Pointer[followSession]

	metrics Metrics
}

// New returns a Server over b and starts its background work (the
// group-commit committer and the cursor janitor). Call Shutdown to
// stop it.
func New(b Backend, opts *Options) *Server {
	s := &Server{
		b:         b,
		opts:      opts.withDefaults(),
		drainCh:   make(chan struct{}),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.cache = newResultCache(s.opts.CacheEntries)
	s.cursors = newCursorTable(s.opts.CursorTTL)
	// The hub's head adopts the store's current length: global sequence
	// numbers ARE positions in the append-only sequence.
	s.repl = newReplHub(uint64(b.Snap().Len()))
	if s.opts.ReplRetainBytes >= 0 {
		b.SetWALRetention(&store.WALRetention{MaxBytes: s.opts.ReplRetainBytes, Floor: s.repl.floor})
	}
	s.appendCh = make(chan appendReq, s.opts.MaxBatch)
	s.wgCommit.Add(2)
	go s.committer()
	go s.janitor()
	liveServers.add(s)
	return s
}

// Metrics returns the server's live counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// janitor sweeps expired cursors until Shutdown.
func (s *Server) janitor() {
	defer s.wgCommit.Done()
	tick := time.NewTicker(s.opts.CursorTTL / 2)
	defer tick.Stop()
	for {
		select {
		case <-s.drainCh:
			return
		case now := <-tick.C:
			smet.cursorSweeps.Inc()
			if n := s.cursors.sweep(now); n > 0 {
				s.metrics.CursorsExpired.Add(int64(n))
				smet.cursorsExpired.Add(int64(n))
			}
		}
	}
}

// Serve accepts connections on l and serves the binary protocol until
// Shutdown (which returns nil here) or an accept error. Connections
// beyond Options.MaxConns wait in the listen backlog.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		l.Close()
		return errDraining
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	sem := make(chan struct{}, s.opts.MaxConns)
	for {
		select {
		case sem <- struct{}{}:
		case <-s.drainCh:
			return nil
		}
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wgConns.Add(1)
		s.mu.Unlock()
		s.metrics.ConnsActive.Add(1)
		s.metrics.ConnsTotal.Add(1)
		smet.conns.Inc()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.metrics.ConnsActive.Add(-1)
				conn.Close()
				<-sem
				s.wgConns.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn runs one connection's request loop: read a frame, decode,
// dispatch, respond. A malformed frame or decode error closes the
// connection (the stream cannot be trusted past it); an op-level error
// is a statusErr response and the stream continues.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		if s.draining.Load() {
			return
		}
		payload, err := readFrame(br)
		if err != nil {
			return
		}
		t0 := time.Now()
		req, err := ParseRequest(payload)
		if err == nil && req.Op == OpSubscribe {
			// A subscription consumes the connection: it never returns to
			// the request loop.
			s.metrics.Requests.Add(1)
			smet.requests.Inc()
			s.serveSubscribe(conn, br, bw, req)
			return
		}
		var resp []byte
		if err != nil {
			s.metrics.Errors.Add(1)
			smet.errors.Inc()
			resp = errPayload(err.Error())
		} else {
			resp = s.respond(req)
		}
		s.metrics.Requests.Add(1)
		smet.requests.Inc()
		elapsed := time.Since(t0)
		// req.Op is 0 when the parse failed — the "invalid" series.
		smet.observeOp(req.Op, elapsed.Nanoseconds())
		s.logSlowOp(req, elapsed)
		conn.SetWriteDeadline(time.Now().Add(time.Minute))
		if err := writeFrame(bw, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// logSlowOp emits the configured slow-op log line when a request's
// service time crossed Options.SlowOp: the op, its key shape, the
// latency, and the fingerprint of the snapshot state that served it —
// enough to correlate with /metrics series and replay the query.
func (s *Server) logSlowOp(req Request, elapsed time.Duration) {
	if s.opts.SlowOp <= 0 || elapsed < s.opts.SlowOp {
		return
	}
	logf := s.opts.SlowOpLog
	if logf == nil {
		logf = log.Printf
	}
	logf("server: slow op %s %s took %s (snapshot fp %016x, threshold %s)",
		opName(req.Op), keyShape(req), elapsed, s.b.Snap().Fingerprint(), s.opts.SlowOp)
}

// errPayload builds a statusErr response payload.
func errPayload(msg string) []byte {
	w := wire.NewRawWriter()
	w.Byte(statusErr)
	w.Str(msg)
	return w.Bytes()
}

// respond executes one request and encodes its response payload. Query
// panics (out-of-range positions, a broken partitioner) surface as
// error responses, never as a dead server.
func (s *Server) respond(req Request) (out []byte) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.Errors.Add(1)
			smet.errors.Inc()
			out = errPayload(fmt.Sprint(r))
		}
	}()
	w := wire.NewRawWriter()
	w.Byte(statusOK)
	switch req.Op {
	case OpPing:
		if req.Pos != ProtocolVersion {
			return errPayload(fmt.Sprintf("server: protocol version %d not supported, want %d", req.Pos, ProtocolVersion))
		}
		w.Uvarint(ProtocolVersion)
	case OpAppend:
		seq, err := s.submitAppend([]string{req.Value}, req.Rows)
		if err != nil {
			return errPayload(err.Error())
		}
		w.Uvarint(seq)
	case OpAppendBatch:
		seq, err := s.submitAppend(req.Values, req.Rows)
		if err != nil {
			return errPayload(err.Error())
		}
		w.Uvarint(uint64(len(req.Values)))
		w.Uvarint(seq)
	case OpRow:
		row := s.b.Snap().Row(req.Pos)
		encodeRow(w, row)
	case OpScanWhere:
		if err := s.scanWhere(w, req); err != nil {
			return errPayload(err.Error())
		}
	case OpAccess:
		v, _ := s.cachedStr(OpAccess, "", req.Pos, func(sn Snap) (string, int, bool) {
			return sn.Access(req.Pos), 0, false
		})
		w.Str(v)
	case OpRank:
		n, _ := s.cachedNum(OpRank, req.Value, req.Pos, func(sn Snap) (int, bool) {
			return sn.Rank(req.Value, req.Pos), false
		})
		w.Uvarint(uint64(n))
	case OpCount:
		n, _ := s.cachedNum(OpCount, req.Value, 0, func(sn Snap) (int, bool) {
			return sn.Count(req.Value), false
		})
		w.Uvarint(uint64(n))
	case OpSelect:
		pos, ok := s.cachedNum(OpSelect, req.Value, req.Pos, func(sn Snap) (int, bool) {
			return sn.Select(req.Value, req.Pos)
		})
		writeOptPos(w, pos, ok)
	case OpRankPrefix:
		n, _ := s.cachedNum(OpRankPrefix, req.Value, req.Pos, func(sn Snap) (int, bool) {
			return sn.RankPrefix(req.Value, req.Pos), false
		})
		w.Uvarint(uint64(n))
	case OpCountPrefix:
		n, _ := s.cachedNum(OpCountPrefix, req.Value, 0, func(sn Snap) (int, bool) {
			return sn.CountPrefix(req.Value), false
		})
		w.Uvarint(uint64(n))
	case OpSelectPrefix:
		pos, ok := s.cachedNum(OpSelectPrefix, req.Value, req.Pos, func(sn Snap) (int, bool) {
			return sn.SelectPrefix(req.Value, req.Pos)
		})
		writeOptPos(w, pos, ok)
	case OpIterate:
		if err := s.iterate(w, req); err != nil {
			return errPayload(err.Error())
		}
	case OpIteratePrefix:
		s.iteratePrefix(w, req)
	case OpCursorClose:
		s.cursors.close(req.Cursor)
	case OpFlush:
		if err := s.b.Flush(); err != nil {
			return errPayload(err.Error())
		}
	case OpCompact:
		if err := s.b.Compact(); err != nil {
			return errPayload(err.Error())
		}
	case OpReplWait:
		if s.waitWatermark(req.Cursor, time.Duration(req.Max)*time.Millisecond) {
			w.Byte(1)
		} else {
			w.Byte(0)
		}
		w.Uvarint(s.repl.watermark())
	case OpPromote:
		if s.Promote() {
			w.Byte(1)
		} else {
			w.Byte(0)
		}
	case OpStats:
		encodeStats(w, s.stats())
	case OpMetrics:
		// The reply is the same Prometheus text the gateway's /metrics
		// serves — one snapshot format across every surface.
		w.Str(obs.Default().TextSnapshot())
	default:
		return errPayload(fmt.Sprintf("server: unknown opcode %d", req.Op))
	}
	return w.Bytes()
}

// writeOptPos encodes a (pos, ok) result.
func writeOptPos(w *wire.Writer, pos int, ok bool) {
	if ok {
		w.Byte(1)
		w.Uvarint(uint64(pos))
	} else {
		w.Byte(0)
	}
}

// cachedNum serves an integer-shaped point query through the result
// cache: the key is the current snapshot's fingerprint plus the query,
// so any store mutation makes every cached answer unreachable rather
// than stale.
func (s *Server) cachedNum(op byte, arg string, pos int, miss func(Snap) (int, bool)) (int, bool) {
	sn := s.b.Snap()
	if s.cache == nil {
		return miss(sn)
	}
	key := cacheKey{fp: sn.Fingerprint(), op: op, arg: arg, pos: pos}
	if v, hit := s.cache.get(key); hit {
		s.metrics.CacheHits.Add(1)
		smet.cacheHits.Inc()
		return v.num, v.ok
	}
	s.metrics.CacheMisses.Add(1)
	smet.cacheMisses.Inc()
	n, ok := miss(sn)
	s.cache.put(key, cacheVal{num: n, ok: ok})
	return n, ok
}

// cachedStr is cachedNum for string-shaped results (Access).
func (s *Server) cachedStr(op byte, arg string, pos int, miss func(Snap) (string, int, bool)) (string, bool) {
	sn := s.b.Snap()
	if s.cache == nil {
		v, _, _ := miss(sn)
		return v, true
	}
	key := cacheKey{fp: sn.Fingerprint(), op: op, arg: arg, pos: pos}
	if v, hit := s.cache.get(key); hit {
		s.metrics.CacheHits.Add(1)
		smet.cacheHits.Inc()
		return v.str, true
	}
	s.metrics.CacheMisses.Add(1)
	smet.cacheMisses.Inc()
	v, _, _ := miss(sn)
	s.cache.put(key, cacheVal{str: v})
	return v, true
}

// iterate serves one OpIterate batch: open or resume a cursor, stream
// up to Max values from its pinned snapshot, and either retire the
// cursor (done) or renew its lease.
func (s *Server) iterate(w *wire.Writer, req Request) error {
	maxVals := req.Max
	if maxVals <= 0 || maxVals > s.opts.MaxIterBatch {
		maxVals = s.opts.MaxIterBatch
	}
	var cur *cursor
	id := req.Cursor
	if id == 0 {
		cur = &cursor{snap: s.b.Snap(), next: req.Pos}
		if cur.next > cur.snap.Len() {
			cur.next = cur.snap.Len()
		}
		s.metrics.CursorsOpened.Add(1)
		smet.cursorsOpened.Inc()
	} else {
		var err error
		cur, err = s.cursors.take(id)
		if err != nil {
			return err
		}
	}
	end := cur.next + maxVals
	if n := cur.snap.Len(); end > n {
		end = n
	}
	// Bound the batch by bytes as well as by count: large values could
	// otherwise encode past MaxFrame and kill the connection instead of
	// answering. At least one value is always sent, so progress holds
	// (a single value is itself frame-capped on the append path).
	const iterByteBudget = 4 << 20
	vals := make([]string, 0, end-cur.next)
	bytes := 0
	if cur.next < end {
		cur.snap.Iterate(cur.next, end, func(_ int, v string) bool {
			vals = append(vals, v)
			bytes += len(v) + 9 // value plus worst-case length prefix
			return bytes < iterByteBudget
		})
	}
	start := cur.next
	cur.next = start + len(vals)
	done := cur.next >= cur.snap.Len()
	if done {
		if id != 0 {
			s.cursors.close(id) // already taken; close is for safety
		}
		id = 0
	} else if id == 0 {
		id = s.cursors.open(cur.snap, cur.next)
	} else {
		s.cursors.put(id, cur)
	}
	w.Uvarint(id)
	if done {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.Uvarint(uint64(start))
	w.Uvarint(uint64(len(vals)))
	for _, v := range vals {
		w.Str(v)
	}
	return nil
}

// iteratePrefix serves one OpIteratePrefix batch: positions (and
// values) of elements with the requested prefix, starting at the Pos-th
// match. Unlike OpIterate there is no cursor lease: the sequence is
// append-only, so a match index permanently names the same element and
// the client resumes statelessly by echoing the next index — the store
// seeks to it through the router's frozen prefix sums rather than
// replaying the stream.
func (s *Server) iteratePrefix(w *wire.Writer, req Request) {
	maxVals := req.Max
	if maxVals <= 0 || maxVals > s.opts.MaxIterBatch {
		maxVals = s.opts.MaxIterBatch
	}
	sn := s.b.Snap()
	// Same byte bound as iterate: stop before the frame could overflow.
	const iterByteBudget = 4 << 20
	type match struct {
		pos int
		val string
	}
	matches := make([]match, 0, min(maxVals, 64))
	bytes, done := 0, true
	sn.IteratePrefix(req.Value, req.Pos, func(_, pos int) bool {
		if len(matches) >= maxVals || bytes >= iterByteBudget {
			done = false // more matches exist past the batch
			return false
		}
		v := sn.Access(pos)
		matches = append(matches, match{pos, v})
		bytes += len(v) + 18 // value plus worst-case position + prefix
		return true
	})
	if done {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.Uvarint(uint64(req.Pos))
	w.Uvarint(uint64(len(matches)))
	for _, m := range matches {
		w.Uvarint(uint64(m.pos))
		w.Str(m.val)
	}
}

// scanWhere serves one OpScanWhere batch: positions, values and
// payload rows of elements matching the prefix and every numeric
// predicate, starting at the Pos-th match. Pagination is stateless like
// iteratePrefix — the sequence is append-only, so a match index
// permanently names the same element and the client resumes by echoing
// the next index.
func (s *Server) scanWhere(w *wire.Writer, req Request) error {
	maxVals := req.Max
	if maxVals <= 0 || maxVals > s.opts.MaxIterBatch {
		maxVals = s.opts.MaxIterBatch
	}
	sn := s.b.Snap()
	const iterByteBudget = 4 << 20
	type match struct {
		pos int
		val string
		row store.Row
	}
	matches := make([]match, 0, min(maxVals, 64))
	bytes, done := 0, true
	err := sn.IterateWhere(req.Value, req.Pos, req.Preds, func(_, pos int) bool {
		if len(matches) >= maxVals || bytes >= iterByteBudget {
			done = false // more matches exist past the batch
			return false
		}
		v := sn.Access(pos)
		row := sn.Row(pos)
		matches = append(matches, match{pos, v, row})
		bytes += len(v) + 18
		for _, c := range row {
			bytes += len(c.Blob()) + 10
		}
		return true
	})
	if err != nil {
		return err
	}
	if done {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.Uvarint(uint64(req.Pos))
	w.Uvarint(uint64(len(matches)))
	for _, m := range matches {
		w.Uvarint(uint64(m.pos))
		w.Str(m.val)
		encodeRow(w, m.row)
	}
	return nil
}

// stats builds the OpStats reply.
func (s *Server) stats() Stats {
	sn := s.b.Snap()
	st := Stats{
		Len:        sn.Len(),
		Distinct:   sn.AlphabetSize(),
		Height:     sn.Height(),
		SizeBits:   sn.SizeBits(),
		MemLen:     s.b.MemLen(),
		Shards:     s.b.Shards(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Watermark:  s.repl.watermark(),
		Following:  s.Following(),
		Followers:  s.repl.followerCount(),
	}
	ri := s.b.Router()
	st.RouterBits = ri.Bits
	st.RouterFrozenChunks = ri.FrozenChunks
	st.RouterTailChunks = ri.TailChunks
	for _, g := range s.b.Generations() {
		st.Gens = append(st.Gens, GenStat{
			ID: g.ID, Len: g.Len, SizeBits: g.SizeBits,
			FilterBits: g.FilterBits, MinValue: g.MinValue, MaxValue: g.MaxValue,
		})
	}
	st.Schema = s.b.Schema()
	return st
}

// Shutdown drains the server: stop accepting, let in-flight requests
// finish (any queued appends still commit), then close connections and
// stop the background work. The context bounds the wait — when it
// expires, remaining connections are closed forcibly. The store itself
// is not closed; that is the caller's next step. Safe to call more
// than once. Callers routing writes through the HTTP gateway should
// shut that HTTP server down first — gateway requests arriving after
// the drain get errDraining.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil
	}
	liveServers.remove(s)
	close(s.drainCh)
	// Stop following before draining connections: the follow loop's
	// applies go through the same commit path as queued appends.
	if fs := s.follow.Swap(nil); fs != nil {
		close(fs.stop)
		fs.closeConn()
		<-fs.done
	}
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	// Unblock handlers parked in a frame read; mid-request handlers
	// finish their response first (the deadline only gates reads).
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	err := s.waitConns(ctx)

	// No connection handler is left; refuse any further submits (late
	// HTTP gateway calls) and retire the committer once the queue is
	// fully committed.
	s.sendMu.Lock()
	s.sendOff = true
	s.sendMu.Unlock()
	close(s.appendCh)
	s.wgCommit.Wait()
	// Drop the retention policy: with the hub gone nothing will advance
	// the floor, and retained logs would not survive a reopen anyway.
	if s.opts.ReplRetainBytes >= 0 {
		s.b.SetWALRetention(nil)
	}
	return err
}

// waitConns waits for connection handlers, force-closing stragglers
// when ctx expires.
func (s *Server) waitConns(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wgConns.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
