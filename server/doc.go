// Package server turns a store.Store or store.ShardedStore into a
// network service: a compact length-prefixed binary protocol (plus an
// HTTP/JSON gateway) over the store's whole indexed-sequence surface —
// Append/AppendBatch, Access, Rank, Count, Select, the prefix forms,
// cursor-based iteration, Flush/Compact/Stats.
//
// Three mechanisms carry the load:
//
//   - Group commit. Connection handlers never append directly; they
//     enqueue values and a single committer coalesces everything
//     pending — across all connections — into one Store.AppendBatch
//     call: one append-lock acquisition, one WAL write, at most one
//     fsync per batch. Under concurrency the per-append log cost
//     amortizes toward zero; an idle server commits a lone append
//     immediately.
//
//   - Pinned snapshots. Every read request is served from one
//     immutable snapshot, and a cursor pins its snapshot across
//     Iterate round trips (leased with a TTL so abandoned clients
//     cannot hold state forever). Readers never block writers and
//     never see a half-applied batch.
//
//   - A fingerprint-keyed result cache. Point queries are cached under
//     (snapshot fingerprint, op, argument): the fingerprint changes
//     whenever the store's visible state changes, so invalidation is
//     free — entries for old states simply stop being looked up and
//     age out of the sharded LRU.
//
// The server enforces a connection cap (excess accepts wait —
// backpressure at the door), bounds frame sizes, and drains gracefully
// on Shutdown: in-flight requests finish, queued appends commit, then
// connections close. See DESIGN.md §8 for the wire format and the
// cmd/wtserve command for the deployable binary.
package server
