package server_test

// Race-stress: many client goroutines hammer one server with mixed
// appends, point reads, scans and admin ops while the store flushes
// and compacts underneath. Run under -race in CI; correctness here is
// "no data race, no error, no hang" — exact answers are the
// differential test's job.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/server"
	"repro/store"
)

func TestServerRaceStress(t *testing.T) {
	_, addr := startServer(t, 2,
		&store.Options{FlushThreshold: 1 << 7},
		&server.Options{CacheEntries: 256, CursorTTL: 5 * time.Second})

	const clients = 6
	deadline := time.Now().Add(1500 * time.Millisecond)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				errs[g] = err
				return
			}
			defer c.Close()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; time.Now().Before(deadline); i++ {
				switch r.Intn(10) {
				case 0, 1, 2, 3:
					batch := make([]string, 1+r.Intn(8))
					for k := range batch {
						batch[k] = fmt.Sprintf("s%d/%05d", g, i*8+k)
					}
					if err := c.AppendBatch(batch); err != nil {
						errs[g] = err
						return
					}
				case 4, 5:
					st, err := c.Stats()
					if err != nil {
						errs[g] = err
						return
					}
					if st.Len > 0 {
						if _, err := c.Access(r.Intn(st.Len)); err != nil {
							errs[g] = err
							return
						}
					}
				case 6:
					if _, err := c.CountPrefix(fmt.Sprintf("s%d/", r.Intn(clients))); err != nil {
						errs[g] = err
						return
					}
				case 7:
					if _, _, err := c.SelectPrefix(fmt.Sprintf("s%d/", r.Intn(clients)), r.Intn(50)); err != nil {
						errs[g] = err
						return
					}
				case 8:
					n := 0
					err := c.Scan(0, 200, 64, func(pos int, v string) bool {
						n++
						return n < 120 // sometimes stop early (cursor close path)
					})
					if err != nil {
						errs[g] = err
						return
					}
				case 9:
					if g == 0 {
						if err := c.Flush(); err != nil {
							errs[g] = err
							return
						}
					} else if _, err := c.Count(fmt.Sprintf("s%d/%05d", g, r.Intn(200))); err != nil {
						errs[g] = err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", g, err)
		}
	}
}
