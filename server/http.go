package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/store"
)

// HTTPHandler returns the HTTP/JSON gateway over the same serving
// paths as the binary protocol — appends go through the group
// committer, reads through the pinned snapshot and result cache:
//
//	GET  /healthz                       liveness (503 while draining)
//	GET  /metrics                       Prometheus text exposition
//	GET  /debug/vars                    expvar (legacy JSON counters)
//	GET  /debug/pprof/...               net/http/pprof profiles
//	GET  /debug/trace                   event tracer ring as JSON
//	GET  /v1/stats                      store shape
//	GET  /v1/access?pos=P
//	GET  /v1/rank?v=V&pos=P             also /v1/count?v=V
//	GET  /v1/select?v=V&idx=I
//	GET  /v1/rankprefix?p=V&pos=P       also /v1/countprefix?p=V
//	GET  /v1/selectprefix?p=V&idx=I
//	GET  /v1/scan?start=P&n=N           at most the server's batch cap
//	GET  /v1/scanprefix?p=V&from=I&n=N  prefix matches from the I-th on
//	GET  /v1/row?pos=P                  columnar payload row at P
//	GET  /v1/countwhere?p=V&pred=E      count prefix ∩ predicate matches
//	POST /v1/append                     {"values": ["..."], "rows": [[...]]}
//	POST /v1/flush | /v1/compact
//
// Payload rows render as JSON arrays, one cell per schema column:
// null, a non-negative integer (uint64 column) or a string (bytes
// column). /v1/countwhere takes one ?pred= per predicate, each an
// expression like score>=10 against a uint64 column's name.
//
// The gateway exists for curl-ability and dashboards; bulk traffic
// belongs on the binary protocol.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// /metrics is Prometheus text exposition — scrapers expect exactly
	// this under exactly this path. The legacy JSON counter dump lives
	// wholly under /debug/vars (publish the server's Metrics through
	// expvar, as cmd/wtserve does).
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// The pprof handlers hang off the gateway mux explicitly (the
	// net/http/pprof side-effect registration only covers
	// http.DefaultServeMux, which this gateway never uses).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		data, err := obs.DefaultTracer.DumpJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.stats()
		writeJSON(w, map[string]any{
			"len": st.Len, "distinct": st.Distinct, "height": st.Height,
			"size_bits": st.SizeBits, "memtable_len": st.MemLen,
			"shards": st.Shards, "generations": len(st.Gens),
			"router_bits":          st.RouterBits,
			"router_frozen_chunks": st.RouterFrozenChunks,
			"router_tail_chunks":   st.RouterTailChunks,
		})
	})
	mux.HandleFunc("/v1/access", s.guard(func(w http.ResponseWriter, r *http.Request) {
		pos, err := intParam(r, "pos")
		if err != nil {
			httpErr(w, err)
			return
		}
		v, _ := s.cachedStr(OpAccess, "", pos, func(sn Snap) (string, int, bool) {
			return sn.Access(pos), 0, false
		})
		writeJSON(w, map[string]any{"pos": pos, "value": v})
	}))
	mux.HandleFunc("/v1/rank", s.guard(func(w http.ResponseWriter, r *http.Request) {
		v := r.URL.Query().Get("v")
		pos, err := intParam(r, "pos")
		if err != nil {
			httpErr(w, err)
			return
		}
		n, _ := s.cachedNum(OpRank, v, pos, func(sn Snap) (int, bool) { return sn.Rank(v, pos), false })
		writeJSON(w, map[string]any{"rank": n})
	}))
	mux.HandleFunc("/v1/count", s.guard(func(w http.ResponseWriter, r *http.Request) {
		v := r.URL.Query().Get("v")
		n, _ := s.cachedNum(OpCount, v, 0, func(sn Snap) (int, bool) { return sn.Count(v), false })
		writeJSON(w, map[string]any{"count": n})
	}))
	mux.HandleFunc("/v1/select", s.guard(func(w http.ResponseWriter, r *http.Request) {
		v := r.URL.Query().Get("v")
		idx, err := intParam(r, "idx")
		if err != nil {
			httpErr(w, err)
			return
		}
		pos, ok := s.cachedNum(OpSelect, v, idx, func(sn Snap) (int, bool) { return sn.Select(v, idx) })
		writeJSON(w, map[string]any{"pos": pos, "ok": ok})
	}))
	mux.HandleFunc("/v1/rankprefix", s.guard(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		pos, err := intParam(r, "pos")
		if err != nil {
			httpErr(w, err)
			return
		}
		n, _ := s.cachedNum(OpRankPrefix, p, pos, func(sn Snap) (int, bool) { return sn.RankPrefix(p, pos), false })
		writeJSON(w, map[string]any{"rank": n})
	}))
	mux.HandleFunc("/v1/countprefix", s.guard(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		n, _ := s.cachedNum(OpCountPrefix, p, 0, func(sn Snap) (int, bool) { return sn.CountPrefix(p), false })
		writeJSON(w, map[string]any{"count": n})
	}))
	mux.HandleFunc("/v1/selectprefix", s.guard(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		idx, err := intParam(r, "idx")
		if err != nil {
			httpErr(w, err)
			return
		}
		pos, ok := s.cachedNum(OpSelectPrefix, p, idx, func(sn Snap) (int, bool) { return sn.SelectPrefix(p, idx) })
		writeJSON(w, map[string]any{"pos": pos, "ok": ok})
	}))
	mux.HandleFunc("/v1/scan", s.guard(func(w http.ResponseWriter, r *http.Request) {
		start, err := intParam(r, "start")
		if err != nil {
			httpErr(w, err)
			return
		}
		n, err := intParam(r, "n")
		if err != nil {
			httpErr(w, err)
			return
		}
		if n > s.opts.MaxIterBatch {
			n = s.opts.MaxIterBatch
		}
		sn := s.b.Snap()
		if start > sn.Len() {
			start = sn.Len()
		}
		end := start + n
		if end > sn.Len() {
			end = sn.Len()
		}
		vals := make([]string, 0, end-start)
		if start < end {
			sn.Iterate(start, end, func(_ int, v string) bool {
				vals = append(vals, v)
				return true
			})
		}
		writeJSON(w, map[string]any{"start": start, "values": vals})
	}))
	mux.HandleFunc("/v1/scanprefix", s.guard(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		// from defaults to 0 (start of the match stream) and n to the
		// iteration batch cap — ?p= alone is a valid first page.
		from, err := optIntParam(r, "from", 0)
		if err != nil || from < 0 {
			httpErr(w, fmt.Errorf("bad ?from="))
			return
		}
		n, err := optIntParam(r, "n", s.opts.MaxIterBatch)
		if err != nil {
			httpErr(w, err)
			return
		}
		if n <= 0 || n > s.opts.MaxIterBatch {
			n = s.opts.MaxIterBatch
		}
		sn := s.b.Snap()
		positions := make([]int, 0, min(n, 64))
		vals := make([]string, 0, min(n, 64))
		done := true
		sn.IteratePrefix(p, from, func(_, pos int) bool {
			if len(vals) >= n {
				done = false
				return false
			}
			positions = append(positions, pos)
			vals = append(vals, sn.Access(pos))
			return true
		})
		writeJSON(w, map[string]any{"from": from, "positions": positions, "values": vals, "done": done})
	}))
	mux.HandleFunc("/v1/row", s.guard(func(w http.ResponseWriter, r *http.Request) {
		pos, err := intParam(r, "pos")
		if err != nil {
			httpErr(w, err)
			return
		}
		row := s.b.Snap().Row(pos) // panics out of range; guard turns it into a 400
		writeJSON(w, map[string]any{"pos": pos, "row": rowToJSON(row)})
	}))
	mux.HandleFunc("/v1/countwhere", s.guard(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		preds, err := parsePredParams(r, s.b.Schema())
		if err != nil {
			httpErr(w, err)
			return
		}
		n, err := s.b.Snap().CountWhere(p, preds...)
		if err != nil {
			httpErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"count": n})
	}))
	mux.HandleFunc("/v1/append", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var body struct {
			Values []string `json:"values"`
			Rows   [][]any  `json:"rows"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxFrame))
		dec.UseNumber() // uint64 cells would lose precision as float64
		if err := dec.Decode(&body); err != nil {
			httpErr(w, err)
			return
		}
		var rows []store.Row
		if body.Rows != nil {
			if len(body.Rows) != len(body.Values) {
				httpErr(w, fmt.Errorf("%d rows for %d values", len(body.Rows), len(body.Values)))
				return
			}
			rows = make([]store.Row, len(body.Rows))
			for i, jr := range body.Rows {
				row, err := jsonToRow(jr)
				if err != nil {
					httpErr(w, fmt.Errorf("rows[%d]: %w", i, err))
					return
				}
				rows[i] = row
			}
		}
		seq, err := s.submitAppend(body.Values, rows)
		if err != nil {
			// A drain refusal is the server's state, not the client's
			// mistake: 503 tells balancers and clients to retry
			// elsewhere, matching /healthz.
			if errors.Is(err, errDraining) {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			// A follower answers writes with 421 and the primary's
			// address, so a client (or proxy) can re-aim the request.
			var fwe *FollowerWriteError
			if errors.As(err, &fwe) {
				w.Header().Set("X-WT-Primary", fwe.Primary)
				http.Error(w, err.Error(), http.StatusMisdirectedRequest)
				return
			}
			httpErr(w, err)
			return
		}
		// The covering sequence number doubles as the session's
		// consistency token: echo it back to X-WT-Consistency-Token on a
		// follower's gateway to read your own writes there.
		w.Header().Set("X-WT-Seq", strconv.FormatUint(seq, 10))
		writeJSON(w, map[string]any{"appended": len(body.Values), "seq": seq})
	})
	mux.HandleFunc("/v1/repl", func(w http.ResponseWriter, r *http.Request) {
		role := "primary"
		if s.Following() != "" {
			role = "follower"
		}
		var retainedSegs int
		var retainedBytes int64
		for _, seg := range s.b.RetainedWALs() {
			retainedSegs++
			retainedBytes += seg.Bytes
		}
		writeJSON(w, map[string]any{
			"role":               role,
			"following":          s.Following(),
			"watermark":          s.repl.watermark(),
			"lag_records":        s.replLagRecords(),
			"followers":          s.repl.followerAcked(),
			"retained_wal_segs":  retainedSegs,
			"retained_wal_bytes": retainedBytes,
		})
	})
	mux.HandleFunc("/v1/flush", s.admin((*Server).flushOp))
	mux.HandleFunc("/v1/compact", s.admin((*Server).compactOp))
	return mux
}

func (s *Server) flushOp() error   { return s.b.Flush() }
func (s *Server) compactOp() error { return s.b.Compact() }

// admin wraps a POST-only maintenance op.
func (s *Server) admin(op func(*Server) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := op(s); err != nil {
			httpErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"ok": true})
	}
}

// httpTokenWait bounds how long a gateway read blocks on a
// consistency token before telling the client to retry.
const httpTokenWait = 5 * time.Second

// guard wraps every gateway read handler: it honors the
// read-your-writes consistency token, and turns a handler's panic
// (out-of-range position) into a 400, mirroring the binary protocol's
// error responses.
//
// A request carrying X-WT-Consistency-Token: <seq> (the seq from an
// append response, on any server of the group) blocks until this
// server's watermark covers it — on a lagging follower the read waits
// for replication to catch up rather than serving a view missing the
// session's own writes. If the token is not covered within
// httpTokenWait, the reply is 503 with Retry-After and the current
// watermark in X-WT-Seq, so the client can retry or fall back to the
// primary.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if tok := r.Header.Get("X-WT-Consistency-Token"); tok != "" {
			seq, err := strconv.ParseUint(tok, 10, 64)
			if err != nil {
				http.Error(w, "bad X-WT-Consistency-Token", http.StatusBadRequest)
				return
			}
			if !s.waitWatermark(seq, httpTokenWait) {
				w.Header().Set("X-WT-Seq", strconv.FormatUint(s.repl.watermark(), 10))
				w.Header().Set("Retry-After", "1")
				http.Error(w, fmt.Sprintf("watermark %d not yet caught up to token %d", s.repl.watermark(), seq),
					http.StatusServiceUnavailable)
				return
			}
		}
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.Errors.Add(1)
				http.Error(w, fmt.Sprint(rec), http.StatusBadRequest)
			}
		}()
		h(w, r)
	}
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing ?%s=", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad ?%s=%q", name, raw)
	}
	return v, nil
}

// optIntParam is intParam with a default for an absent parameter.
func optIntParam(r *http.Request, name string, def int) (int, error) {
	if r.URL.Query().Get(name) == "" {
		return def, nil
	}
	return intParam(r, name)
}

// rowToJSON renders a payload row for the gateway: null, uint64 as a
// number, bytes as a string.
func rowToJSON(row store.Row) []any {
	if row == nil {
		return nil
	}
	out := make([]any, len(row))
	for i, c := range row {
		switch c.Kind() {
		case store.ColUint64:
			out[i] = c.U64()
		case store.ColBytes:
			out[i] = string(c.Blob())
		default:
			out[i] = nil
		}
	}
	return out
}

// jsonToRow decodes one gateway row: a JSON array with one cell per
// schema column — null, a non-negative integer, or a string. An empty
// array is the all-NULL row (nil).
func jsonToRow(cells []any) (store.Row, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	row := make(store.Row, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case nil:
			row[i] = store.Null()
		case json.Number:
			u, err := strconv.ParseUint(v.String(), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cell %d: %q is not a uint64", i, v.String())
			}
			row[i] = store.U64(u)
		case string:
			row[i] = store.Blob([]byte(v))
		default:
			return nil, fmt.Errorf("cell %d: unsupported JSON type %T", i, c)
		}
	}
	return row, nil
}

// parsePredParams parses the repeated ?pred= expressions of a
// countwhere request against the store's schema.
func parsePredParams(r *http.Request, schema []store.ColumnSpec) ([]store.Pred, error) {
	exprs := r.URL.Query()["pred"]
	if len(exprs) == 0 {
		return nil, nil
	}
	preds := make([]store.Pred, 0, len(exprs))
	for _, e := range exprs {
		p, err := store.ParsePredicate(e, schema)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	return preds, nil
}

func httpErr(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
