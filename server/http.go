package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
)

// HTTPHandler returns the HTTP/JSON gateway over the same serving
// paths as the binary protocol — appends go through the group
// committer, reads through the pinned snapshot and result cache:
//
//	GET  /healthz                       liveness (503 while draining)
//	GET  /metrics                       Prometheus text exposition
//	GET  /debug/vars                    expvar (legacy JSON counters)
//	GET  /debug/pprof/...               net/http/pprof profiles
//	GET  /debug/trace                   event tracer ring as JSON
//	GET  /v1/stats                      store shape
//	GET  /v1/access?pos=P
//	GET  /v1/rank?v=V&pos=P             also /v1/count?v=V
//	GET  /v1/select?v=V&idx=I
//	GET  /v1/rankprefix?p=V&pos=P       also /v1/countprefix?p=V
//	GET  /v1/selectprefix?p=V&idx=I
//	GET  /v1/scan?start=P&n=N           at most the server's batch cap
//	GET  /v1/scanprefix?p=V&from=I&n=N  prefix matches from the I-th on
//	POST /v1/append                     {"values": ["..."]}
//	POST /v1/flush | /v1/compact
//
// The gateway exists for curl-ability and dashboards; bulk traffic
// belongs on the binary protocol.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// /metrics is Prometheus text exposition — scrapers expect exactly
	// this under exactly this path. The legacy JSON counter dump lives
	// wholly under /debug/vars (publish the server's Metrics through
	// expvar, as cmd/wtserve does).
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// The pprof handlers hang off the gateway mux explicitly (the
	// net/http/pprof side-effect registration only covers
	// http.DefaultServeMux, which this gateway never uses).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		data, err := obs.DefaultTracer.DumpJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.stats()
		writeJSON(w, map[string]any{
			"len": st.Len, "distinct": st.Distinct, "height": st.Height,
			"size_bits": st.SizeBits, "memtable_len": st.MemLen,
			"shards": st.Shards, "generations": len(st.Gens),
			"router_bits":          st.RouterBits,
			"router_frozen_chunks": st.RouterFrozenChunks,
			"router_tail_chunks":   st.RouterTailChunks,
		})
	})
	mux.HandleFunc("/v1/access", s.guard(func(w http.ResponseWriter, r *http.Request) {
		pos, err := intParam(r, "pos")
		if err != nil {
			httpErr(w, err)
			return
		}
		v, _ := s.cachedStr(OpAccess, "", pos, func(sn Snap) (string, int, bool) {
			return sn.Access(pos), 0, false
		})
		writeJSON(w, map[string]any{"pos": pos, "value": v})
	}))
	mux.HandleFunc("/v1/rank", s.guard(func(w http.ResponseWriter, r *http.Request) {
		v := r.URL.Query().Get("v")
		pos, err := intParam(r, "pos")
		if err != nil {
			httpErr(w, err)
			return
		}
		n, _ := s.cachedNum(OpRank, v, pos, func(sn Snap) (int, bool) { return sn.Rank(v, pos), false })
		writeJSON(w, map[string]any{"rank": n})
	}))
	mux.HandleFunc("/v1/count", s.guard(func(w http.ResponseWriter, r *http.Request) {
		v := r.URL.Query().Get("v")
		n, _ := s.cachedNum(OpCount, v, 0, func(sn Snap) (int, bool) { return sn.Count(v), false })
		writeJSON(w, map[string]any{"count": n})
	}))
	mux.HandleFunc("/v1/select", s.guard(func(w http.ResponseWriter, r *http.Request) {
		v := r.URL.Query().Get("v")
		idx, err := intParam(r, "idx")
		if err != nil {
			httpErr(w, err)
			return
		}
		pos, ok := s.cachedNum(OpSelect, v, idx, func(sn Snap) (int, bool) { return sn.Select(v, idx) })
		writeJSON(w, map[string]any{"pos": pos, "ok": ok})
	}))
	mux.HandleFunc("/v1/rankprefix", s.guard(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		pos, err := intParam(r, "pos")
		if err != nil {
			httpErr(w, err)
			return
		}
		n, _ := s.cachedNum(OpRankPrefix, p, pos, func(sn Snap) (int, bool) { return sn.RankPrefix(p, pos), false })
		writeJSON(w, map[string]any{"rank": n})
	}))
	mux.HandleFunc("/v1/countprefix", s.guard(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		n, _ := s.cachedNum(OpCountPrefix, p, 0, func(sn Snap) (int, bool) { return sn.CountPrefix(p), false })
		writeJSON(w, map[string]any{"count": n})
	}))
	mux.HandleFunc("/v1/selectprefix", s.guard(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		idx, err := intParam(r, "idx")
		if err != nil {
			httpErr(w, err)
			return
		}
		pos, ok := s.cachedNum(OpSelectPrefix, p, idx, func(sn Snap) (int, bool) { return sn.SelectPrefix(p, idx) })
		writeJSON(w, map[string]any{"pos": pos, "ok": ok})
	}))
	mux.HandleFunc("/v1/scan", s.guard(func(w http.ResponseWriter, r *http.Request) {
		start, err := intParam(r, "start")
		if err != nil {
			httpErr(w, err)
			return
		}
		n, err := intParam(r, "n")
		if err != nil {
			httpErr(w, err)
			return
		}
		if n > s.opts.MaxIterBatch {
			n = s.opts.MaxIterBatch
		}
		sn := s.b.Snap()
		if start > sn.Len() {
			start = sn.Len()
		}
		end := start + n
		if end > sn.Len() {
			end = sn.Len()
		}
		vals := make([]string, 0, end-start)
		if start < end {
			sn.Iterate(start, end, func(_ int, v string) bool {
				vals = append(vals, v)
				return true
			})
		}
		writeJSON(w, map[string]any{"start": start, "values": vals})
	}))
	mux.HandleFunc("/v1/scanprefix", s.guard(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		// from defaults to 0 (start of the match stream) and n to the
		// iteration batch cap — ?p= alone is a valid first page.
		from, err := optIntParam(r, "from", 0)
		if err != nil || from < 0 {
			httpErr(w, fmt.Errorf("bad ?from="))
			return
		}
		n, err := optIntParam(r, "n", s.opts.MaxIterBatch)
		if err != nil {
			httpErr(w, err)
			return
		}
		if n <= 0 || n > s.opts.MaxIterBatch {
			n = s.opts.MaxIterBatch
		}
		sn := s.b.Snap()
		positions := make([]int, 0, min(n, 64))
		vals := make([]string, 0, min(n, 64))
		done := true
		sn.IteratePrefix(p, from, func(_, pos int) bool {
			if len(vals) >= n {
				done = false
				return false
			}
			positions = append(positions, pos)
			vals = append(vals, sn.Access(pos))
			return true
		})
		writeJSON(w, map[string]any{"from": from, "positions": positions, "values": vals, "done": done})
	}))
	mux.HandleFunc("/v1/append", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var body struct {
			Values []string `json:"values"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxFrame)).Decode(&body); err != nil {
			httpErr(w, err)
			return
		}
		seq, err := s.submitAppend(body.Values)
		if err != nil {
			// A drain refusal is the server's state, not the client's
			// mistake: 503 tells balancers and clients to retry
			// elsewhere, matching /healthz.
			if errors.Is(err, errDraining) {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			// A follower answers writes with 421 and the primary's
			// address, so a client (or proxy) can re-aim the request.
			var fwe *FollowerWriteError
			if errors.As(err, &fwe) {
				w.Header().Set("X-WT-Primary", fwe.Primary)
				http.Error(w, err.Error(), http.StatusMisdirectedRequest)
				return
			}
			httpErr(w, err)
			return
		}
		// The covering sequence number doubles as the session's
		// consistency token: echo it back to X-WT-Consistency-Token on a
		// follower's gateway to read your own writes there.
		w.Header().Set("X-WT-Seq", strconv.FormatUint(seq, 10))
		writeJSON(w, map[string]any{"appended": len(body.Values), "seq": seq})
	})
	mux.HandleFunc("/v1/repl", func(w http.ResponseWriter, r *http.Request) {
		role := "primary"
		if s.Following() != "" {
			role = "follower"
		}
		var retainedSegs int
		var retainedBytes int64
		for _, seg := range s.b.RetainedWALs() {
			retainedSegs++
			retainedBytes += seg.Bytes
		}
		writeJSON(w, map[string]any{
			"role":               role,
			"following":          s.Following(),
			"watermark":          s.repl.watermark(),
			"lag_records":        s.replLagRecords(),
			"followers":          s.repl.followerAcked(),
			"retained_wal_segs":  retainedSegs,
			"retained_wal_bytes": retainedBytes,
		})
	})
	mux.HandleFunc("/v1/flush", s.admin((*Server).flushOp))
	mux.HandleFunc("/v1/compact", s.admin((*Server).compactOp))
	return mux
}

func (s *Server) flushOp() error   { return s.b.Flush() }
func (s *Server) compactOp() error { return s.b.Compact() }

// admin wraps a POST-only maintenance op.
func (s *Server) admin(op func(*Server) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := op(s); err != nil {
			httpErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"ok": true})
	}
}

// httpTokenWait bounds how long a gateway read blocks on a
// consistency token before telling the client to retry.
const httpTokenWait = 5 * time.Second

// guard wraps every gateway read handler: it honors the
// read-your-writes consistency token, and turns a handler's panic
// (out-of-range position) into a 400, mirroring the binary protocol's
// error responses.
//
// A request carrying X-WT-Consistency-Token: <seq> (the seq from an
// append response, on any server of the group) blocks until this
// server's watermark covers it — on a lagging follower the read waits
// for replication to catch up rather than serving a view missing the
// session's own writes. If the token is not covered within
// httpTokenWait, the reply is 503 with Retry-After and the current
// watermark in X-WT-Seq, so the client can retry or fall back to the
// primary.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if tok := r.Header.Get("X-WT-Consistency-Token"); tok != "" {
			seq, err := strconv.ParseUint(tok, 10, 64)
			if err != nil {
				http.Error(w, "bad X-WT-Consistency-Token", http.StatusBadRequest)
				return
			}
			if !s.waitWatermark(seq, httpTokenWait) {
				w.Header().Set("X-WT-Seq", strconv.FormatUint(s.repl.watermark(), 10))
				w.Header().Set("Retry-After", "1")
				http.Error(w, fmt.Sprintf("watermark %d not yet caught up to token %d", s.repl.watermark(), seq),
					http.StatusServiceUnavailable)
				return
			}
		}
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.Errors.Add(1)
				http.Error(w, fmt.Sprint(rec), http.StatusBadRequest)
			}
		}()
		h(w, r)
	}
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing ?%s=", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad ?%s=%q", name, raw)
	}
	return v, nil
}

// optIntParam is intParam with a default for an absent parameter.
func optIntParam(r *http.Request, name string, def int) (int, error) {
	if r.URL.Query().Get(name) == "" {
		return def, nil
	}
	return intParam(r, name)
}

func httpErr(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
