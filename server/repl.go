package server

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
	"repro/store"
)

// The replication hub (DESIGN.md §12). Every committed append flows
// through commitPublish, which serializes the backend write with the
// advancement of the hub's head — the global sequence number one past
// the last committed record. Because the store is append-only, the
// head IS the log position: a subscriber needs no WAL bytes to catch
// up, it reads [from, head) out of any snapshot. WAL retention (the
// store-layer floor wired in New) is an optimization that lets a
// briefly-lagging follower's history survive a flush; correctness
// never depends on it.
//
// The seam between catch-up and live streaming is closed by ordering:
// a subscriber registers its channel BEFORE taking the catch-up
// snapshot, so every batch committed after registration is either
// already inside the snapshot (and trimmed from the live stream) or
// arrives on the channel — contiguity is arithmetic, not luck.

const (
	// replSendBuffer is the per-subscriber batch queue. A follower whose
	// connection cannot drain this many pending commits is evicted (the
	// write path never blocks on a slow follower) and reconnects into a
	// fresh catch-up.
	replSendBuffer = 256
	// replSnapChunk sizes snapshot bootstrap chunks and bounds catch-up
	// record frames, comfortably under MaxFrame.
	replSnapChunk = 4 << 20
	// replCatchupBatch caps values per catch-up record frame.
	replCatchupBatch = 2048
	// replWaitCap bounds one OpReplWait block; clients re-issue.
	replWaitCap = 30 * time.Second
)

// replBatch is one committed batch in flight to a subscriber: its
// first global sequence number, its values, and — when the store pins
// a column schema — the payload rows (nil, or one per value).
type replBatch struct {
	start uint64
	vals  []string
	rows  []store.Row
}

// replSub is one subscriber's queue. Closed (by the publisher) on
// eviction; removed from the hub by its connection handler otherwise.
type replSub struct {
	ch chan replBatch
}

// followerState is the primary's book on one follower id.
type followerState struct {
	acked   uint64 // highest watermark the follower reported durable
	conns   int    // live subscriptions under this id (reconnect overlap)
	lastAck time.Time
}

// replHub owns the server's replication state: the committed head,
// the subscriber set, and per-follower watermarks.
type replHub struct {
	// appendMu serializes backend appends with head advancement so
	// sequence numbers are assigned in commit order. Every write path —
	// group committer, direct commits, follower apply — goes through it
	// via commitPublish.
	appendMu sync.Mutex

	mu        sync.Mutex
	head      uint64
	advCh     chan struct{} // closed+replaced on every head advance
	subs      map[*replSub]struct{}
	followers map[string]*followerState
}

func newReplHub(head uint64) *replHub {
	return &replHub{
		head:      head,
		advCh:     make(chan struct{}),
		subs:      make(map[*replSub]struct{}),
		followers: make(map[string]*followerState),
	}
}

// watermark returns the committed head: the global sequence number
// every snapshot taken now covers at least up to.
func (h *replHub) watermark() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.head
}

// floor is the WAL retention floor: the lowest watermark any connected
// follower has acknowledged. With no followers it is MaxUint64 —
// nothing is retained (catch-up is served from snapshots regardless).
func (h *replHub) floor() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	low := uint64(math.MaxUint64)
	for _, f := range h.followers {
		if f.acked < low {
			low = f.acked
		}
	}
	return low
}

// followerCount returns the number of distinct connected follower ids.
func (h *replHub) followerCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.followers)
}

// followerAcked snapshots each connected follower's acked watermark.
func (h *replHub) followerAcked() map[string]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]uint64, len(h.followers))
	for id, f := range h.followers {
		out[id] = f.acked
	}
	return out
}

// commitPublish is the single write entry point: append to the
// backend, advance the head, wake watermark waiters and fan the batch
// out to subscribers. Returns the new head (the sequence number one
// past this batch — the value a read-your-writes client waits on).
func (s *Server) commitPublish(vals []string, rows []store.Row) (uint64, error) {
	h := s.repl
	h.appendMu.Lock()
	defer h.appendMu.Unlock()
	if err := s.b.AppendBatchRows(vals, rows); err != nil {
		return 0, err
	}
	h.mu.Lock()
	start := h.head
	end := start + uint64(len(vals))
	h.head = end
	close(h.advCh)
	h.advCh = make(chan struct{})
	for sub := range h.subs {
		select {
		case sub.ch <- replBatch{start: start, vals: vals, rows: rows}:
		default:
			// The follower's connection fell replSendBuffer commits
			// behind. Evict it rather than block the write path; it
			// reconnects into a snapshot-backed catch-up.
			delete(h.subs, sub)
			close(sub.ch)
			smet.replEvictedSubs.Inc()
		}
	}
	h.mu.Unlock()
	return end, nil
}

// replLagRecords renders this server's replication lag: on a follower,
// how far its watermark trails the primary head it last heard; on a
// primary with followers, how far the slowest acked watermark trails
// its own head.
func (s *Server) replLagRecords() int64 {
	if fs := s.follow.Load(); fs != nil {
		if ph, wm := fs.primaryHead.Load(), s.repl.watermark(); ph > wm {
			return int64(ph - wm)
		}
		return 0
	}
	h := s.repl
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.followers) == 0 {
		return 0
	}
	low := uint64(math.MaxUint64)
	for _, f := range h.followers {
		if f.acked < low {
			low = f.acked
		}
	}
	if h.head > low {
		return int64(h.head - low)
	}
	return 0
}

// waitWatermark blocks until the committed head covers seq, the
// timeout lapses, or the server drains. Reports whether seq is
// covered — the OpReplWait read-your-writes primitive.
func (s *Server) waitWatermark(seq uint64, timeout time.Duration) bool {
	h := s.repl
	if timeout < 0 {
		timeout = 0
	}
	if timeout > replWaitCap {
		timeout = replWaitCap
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		h.mu.Lock()
		head, ch := h.head, h.advCh
		h.mu.Unlock()
		if head >= seq {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return false
		case <-s.drainCh:
			return false
		}
	}
}

// serveSubscribe turns an accepted connection into a replication
// stream: handshake response, snapshot bootstrap or snapshot-backed
// catch-up, then live batches and heartbeats, with the follower's acks
// read off the same connection. The connection never returns to the
// request loop; serveConn closes it when this returns.
func (s *Server) serveSubscribe(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, req Request) {
	sub := SubscribeReq{FollowerID: req.Value, FromSeq: req.Cursor, Boot: req.Max == 1}
	refuse := func(msg string) {
		conn.SetWriteDeadline(time.Now().Add(time.Minute))
		if writeFrame(bw, errPayload(msg)) == nil {
			bw.Flush()
		}
	}
	if sub.FollowerID == "" {
		refuse("server: subscribe needs a follower id")
		return
	}

	// Register before snapshotting: from here on every commit lands on
	// rs.ch, so the snapshot below overlaps or abuts the live stream.
	h := s.repl
	rs := &replSub{ch: make(chan replBatch, replSendBuffer)}
	h.mu.Lock()
	if s.draining.Load() {
		h.mu.Unlock()
		refuse(errDraining.Error())
		return
	}
	if sub.FromSeq > h.head {
		head := h.head
		h.mu.Unlock()
		refuse(fmt.Sprintf("server: subscribe from %d is past head %d (divergent follower?)", sub.FromSeq, head))
		return
	}
	h.subs[rs] = struct{}{}
	fo := h.followers[sub.FollowerID]
	if fo == nil {
		fo = &followerState{}
		h.followers[sub.FollowerID] = fo
	}
	fo.conns++
	if sub.FromSeq > fo.acked {
		fo.acked = sub.FromSeq
	}
	fo.lastAck = time.Now()
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		if _, live := h.subs[rs]; live {
			delete(h.subs, rs)
			close(rs.ch)
		}
		fo.conns--
		if fo.conns == 0 {
			// A disconnected follower stops pinning the retention floor;
			// when it returns, snapshots cover whatever the WAL no longer
			// does.
			delete(h.followers, sub.FollowerID)
		}
		h.mu.Unlock()
		s.b.PruneRetainedWALs()
	}()

	sn := s.b.Snap()
	snapLen := uint64(sn.Len()) // >= registration head >= FromSeq
	// Snapshot bootstrap ships a Frozen image, which carries values only
	// — on a store with columnar attachments it would silently drop every
	// payload row, so such stores always catch up via record frames.
	boot := sub.Boot && sub.FromSeq == 0 && snapLen > 0 && len(sn.Schema()) == 0

	w := wire.NewRawWriter()
	w.Byte(statusOK)
	w.Uvarint(snapLen)
	if boot {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	conn.SetWriteDeadline(time.Now().Add(time.Minute))
	if writeFrame(bw, w.Bytes()) != nil || bw.Flush() != nil {
		return
	}

	send := func(f WALFrame) bool {
		payload := EncodeWALFrame(f)
		conn.SetWriteDeadline(time.Now().Add(time.Minute))
		if writeFrame(bw, payload) != nil || bw.Flush() != nil {
			return false
		}
		if f.Kind == FrameRecords {
			smet.replShippedRecords.Add(int64(len(f.Values)))
			smet.replShippedBytes.Add(int64(len(payload)))
		}
		return true
	}

	expected := sub.FromSeq
	if boot {
		data, err := sn.MarshalBinary()
		if err != nil {
			return
		}
		if !send(WALFrame{Kind: FrameSnapBegin, Seq: snapLen}) {
			return
		}
		for off := 0; off < len(data); off += replSnapChunk {
			end := off + replSnapChunk
			if end > len(data) {
				end = len(data)
			}
			if !send(WALFrame{Kind: FrameSnapChunk, Chunk: data[off:end]}) {
				return
			}
			smet.replSnapBytes.Add(int64(end - off))
		}
		if !send(WALFrame{Kind: FrameSnapEnd}) {
			return
		}
		expected = snapLen
	} else if expected < snapLen {
		// Catch-up straight out of the snapshot: the store is the log.
		if !s.streamCatchup(sn, expected, snapLen, send) {
			return
		}
		expected = snapLen
	}

	// The ack reader owns the connection's read half: watermark
	// bookkeeping and retention pruning ride the returning acks.
	ackDone := make(chan struct{})
	go s.replAckLoop(conn, br, fo, ackDone)

	hb := time.NewTicker(s.opts.ReplHeartbeat)
	defer hb.Stop()
	for {
		select {
		case b, ok := <-rs.ch:
			if !ok {
				return // evicted: the queue overflowed
			}
			end := b.start + uint64(len(b.vals))
			if end <= expected {
				continue // fully inside the catch-up snapshot
			}
			if b.start < expected {
				if b.rows != nil {
					b.rows = b.rows[expected-b.start:]
				}
				b.vals = b.vals[expected-b.start:]
				b.start = expected
			}
			if b.start != expected {
				return // hub contiguity broken; never ship a gap
			}
			if !send(WALFrame{Kind: FrameRecords, Seq: b.start, Values: b.vals, Rows: b.rows}) {
				return
			}
			expected = end
		case <-hb.C:
			if !send(WALFrame{Kind: FrameHeartbeat, Seq: h.watermark()}) {
				return
			}
		case <-ackDone:
			return
		case <-s.drainCh:
			return
		}
	}
}

// streamCatchup ships [from, to) of a snapshot as record frames,
// batched by count and bytes to stay under the frame cap. On a store
// with a pinned schema every frame also carries the payload rows, so a
// follower rebuilds the columns byte-identically.
func (s *Server) streamCatchup(sn Snap, from, to uint64, send func(WALFrame) bool) bool {
	withRows := len(sn.Schema()) > 0
	runStart := from
	batch := make([]string, 0, replCatchupBatch)
	var rows []store.Row
	bytes := 0
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		if !send(WALFrame{Kind: FrameRecords, Seq: runStart, Values: batch, Rows: rows}) {
			return false
		}
		runStart += uint64(len(batch))
		batch = batch[:0]
		if rows != nil {
			rows = rows[:0]
		}
		bytes = 0
		return true
	}
	ok := true
	sn.Iterate(int(from), int(to), func(pos int, v string) bool {
		if len(batch) > 0 && (len(batch) >= replCatchupBatch || bytes+len(v) >= replSnapChunk) {
			if ok = flush(); !ok {
				return false
			}
		}
		batch = append(batch, v)
		if withRows {
			row := sn.Row(pos)
			rows = append(rows, row)
			for _, c := range row {
				bytes += len(c.Blob()) + 10
			}
		}
		bytes += len(v) + 9
		return true
	})
	return ok && flush()
}

// replAckLoop drains a subscriber connection's ack frames, advancing
// the follower's watermark and letting retention release WAL segments
// every follower has passed. Any read error or non-ack frame ends the
// subscription.
func (s *Server) replAckLoop(conn net.Conn, br *bufio.Reader, fo *followerState, done chan struct{}) {
	defer close(done)
	h := s.repl
	for {
		conn.SetReadDeadline(time.Now().Add(replIdleTimeout(s.opts.ReplHeartbeat)))
		payload, err := readFrame(br)
		if err != nil {
			return
		}
		f, err := ParseWALFrame(payload)
		if err != nil || f.Kind != FrameAck {
			return
		}
		h.mu.Lock()
		if f.Seq > fo.acked {
			fo.acked = f.Seq
		}
		fo.lastAck = time.Now()
		h.mu.Unlock()
		smet.replAcks.Inc()
		s.b.PruneRetainedWALs()
	}
}

// replIdleTimeout is how long either replication end waits for traffic
// before declaring the peer dead; heartbeats (and the acks answering
// them) keep a healthy but idle stream far inside it.
func replIdleTimeout(heartbeat time.Duration) time.Duration {
	if t := 5 * heartbeat; t > 10*time.Second {
		return t
	}
	return 10 * time.Second
}
