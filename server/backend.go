package server

import (
	"repro/store"
)

// Snap is the pinned, immutable read view a request is served from:
// every read op of a request (and every batch of a cursor, across
// requests) sees exactly one store state. Both store.Snapshot and
// store.ShardedSnapshot satisfy it.
type Snap interface {
	Len() int
	AlphabetSize() int
	Height() int
	SizeBits() int
	Access(pos int) string
	Rank(v string, pos int) int
	Count(v string) int
	Select(v string, idx int) (int, bool)
	RankPrefix(p string, pos int) int
	CountPrefix(p string) int
	SelectPrefix(p string, idx int) (int, bool)
	Iterate(l, r int, fn func(pos int, s string) bool)
	IteratePrefix(p string, from int, fn func(idx, pos int) bool)
	Fingerprint() uint64
	// ContentFingerprint hashes the visible values themselves — and, when
	// a schema is pinned, every payload cell — so two different stores (a
	// primary and its follower) can be compared.
	ContentFingerprint() uint64
	// MarshalBinary exports the pinned sequence as a loadable Frozen —
	// the replication bootstrap payload. It carries values only, so the
	// bootstrap path is gated off when a column schema is pinned.
	MarshalBinary() ([]byte, error)
	// Schema is the pinned column schema; nil when the store carries no
	// columnar attachments.
	Schema() []store.ColumnSpec
	// Row materializes position pos's payload row (nil when no schema).
	Row(pos int) store.Row
	// CountWhere counts positions matching prefix ∩ numeric predicates.
	CountWhere(prefix string, preds ...store.Pred) (int, error)
	// IterateWhere streams matching positions in position order starting
	// at match offset from.
	IterateWhere(prefix string, from int, preds []store.Pred, fn func(idx, pos int) bool) error
}

// Backend is the store surface the server drives — satisfied by
// adapters over store.Store (ForStore) and store.ShardedStore
// (ForSharded). AppendBatch is the group-commit entry point: one call
// per coalesced batch, one WAL write and at most one fsync inside.
type Backend interface {
	Append(v string) error
	AppendBatch(vs []string) error
	// AppendBatchRows is AppendBatch with optional payload rows (rows is
	// nil or one entry per value); the row-carrying group-commit path.
	AppendBatchRows(vs []string, rows []store.Row) error
	// Schema is the pinned column schema (nil when none).
	Schema() []store.ColumnSpec
	Flush() error
	Compact() error
	MemLen() int
	Generations() []store.GenInfo
	Shards() int
	// Router reports the sharded interleave router's representation
	// split; the zero value for unsharded backends.
	Router() store.RouterInfo
	Snap() Snap
	// SetWALRetention installs (or, with nil, removes) the WAL
	// retention policy replication's catch-up floor rides on.
	SetWALRetention(r *store.WALRetention)
	// PruneRetainedWALs re-applies the retention policy; the hub calls
	// it as follower acks advance the floor.
	PruneRetainedWALs()
	// RetainedWALs describes the segments currently held back — the
	// /v1/repl surface.
	RetainedWALs() []store.RetainedWALInfo
}

// ForStore adapts a plain store into a server Backend.
func ForStore(st *store.Store) Backend { return storeBackend{st} }

// ForSharded adapts a sharded store into a server Backend.
func ForSharded(ss *store.ShardedStore) Backend { return shardedBackend{ss} }

type storeBackend struct{ *store.Store }

func (b storeBackend) Shards() int              { return 1 }
func (b storeBackend) Router() store.RouterInfo { return store.RouterInfo{} }
func (b storeBackend) Snap() Snap               { return b.Snapshot() }

type shardedBackend struct{ *store.ShardedStore }

func (b shardedBackend) Shards() int              { return b.ShardCount() }
func (b shardedBackend) Router() store.RouterInfo { return b.RouterInfo() }
func (b shardedBackend) Snap() Snap               { return b.Snapshot() }
