package server

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/wire"
	"repro/store"
)

// The replication stream (DESIGN.md §12): a follower sends an
// OpSubscribe request, the primary answers it like any other request
// (statusOK, its head sequence number, and whether a snapshot bootstrap
// follows), and from then on the connection carries WAL frames instead
// of request/response pairs — the same length-prefixed outer framing,
// but each payload is a WALFrame. The primary pushes record, snapshot
// and heartbeat frames; the follower pushes ack frames carrying its
// applied watermark back on the same connection.
//
// Frames that carry bulk data (records, snapshot chunks) embed a
// CRC-32 over their body: TCP's checksum is weak at this scale and a
// follower applying a corrupt record would diverge silently — better to
// drop the connection and re-subscribe. Control frames are small enough
// that the opcode-and-shape validation suffices.

// WAL frame kinds.
const (
	// FrameRecords carries appended values: Seq is the first record's
	// global sequence number, Values the records in sequence order.
	FrameRecords byte = 1
	// FrameSnapBegin opens a snapshot bootstrap: Seq is the number of
	// records the snapshot covers (the follower's watermark once loaded).
	FrameSnapBegin byte = 2
	// FrameSnapChunk carries one chunk of the marshalled snapshot.
	FrameSnapChunk byte = 3
	// FrameSnapEnd closes the bootstrap; record frames follow.
	FrameSnapEnd byte = 4
	// FrameHeartbeat is the primary's liveness tick: Seq is its head, so
	// an idle follower still measures lag.
	FrameHeartbeat byte = 5
	// FrameAck is the follower's progress report: Seq is its applied
	// watermark (every record below it is durable on the follower).
	FrameAck byte = 6

	frameKindLimit = FrameAck + 1
)

// WALFrame is one decoded replication stream message. Which fields are
// meaningful depends on Kind — see the kind constants. Rows rides
// FrameRecords on stores with a pinned column schema: nil, or exactly
// one payload row (possibly nil = all-NULL) per value.
type WALFrame struct {
	Kind   byte
	Seq    uint64
	Values []string
	Rows   []store.Row
	Chunk  []byte
}

// EncodeWALFrame serializes a replication frame payload (without the
// outer length prefix). Inverse of ParseWALFrame for every valid frame.
func EncodeWALFrame(f WALFrame) []byte {
	w := wire.NewRawWriter()
	switch f.Kind {
	case FrameRecords:
		w.Uvarint(f.Seq)
		w.Uvarint(uint64(len(f.Values)))
		for _, v := range f.Values {
			w.Str(v)
		}
		encodeRows(w, f.Rows)
	case FrameSnapChunk:
		w.Blob(f.Chunk)
	case FrameSnapBegin, FrameHeartbeat, FrameAck:
		w.Uvarint(f.Seq)
	case FrameSnapEnd:
	default:
		panic(fmt.Sprintf("server: encoding unknown frame kind %d", f.Kind))
	}
	body := w.Bytes()
	out := make([]byte, 0, 5+len(body))
	out = append(out, f.Kind)
	if frameHasCRC(f.Kind) {
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	}
	return append(out, body...)
}

// frameHasCRC reports whether a frame kind carries a body checksum.
func frameHasCRC(kind byte) bool {
	return kind == FrameRecords || kind == FrameSnapChunk
}

// ParseWALFrame decodes a replication frame payload. Arbitrary input —
// torn frames, flipped bits, hostile peers — must error, never panic:
// this is the follower's trust boundary and it is fuzzed. A checksum
// mismatch is an error like any other; the caller drops the connection.
func ParseWALFrame(payload []byte) (WALFrame, error) {
	var f WALFrame
	if len(payload) == 0 {
		return f, fmt.Errorf("server: empty replication frame")
	}
	f.Kind = payload[0]
	if f.Kind == 0 || f.Kind >= frameKindLimit {
		return f, fmt.Errorf("server: unknown replication frame kind %d", f.Kind)
	}
	body := payload[1:]
	if frameHasCRC(f.Kind) {
		if len(body) < 4 {
			return f, fmt.Errorf("server: replication frame truncated before checksum")
		}
		sum := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if got := crc32.ChecksumIEEE(body); got != sum {
			return f, fmt.Errorf("server: replication frame checksum mismatch (%08x != %08x)", got, sum)
		}
	}
	r := wire.NewRawReader(body)
	switch f.Kind {
	case FrameRecords:
		f.Seq = r.Uvarint()
		n := r.Len() // validated against the remaining payload
		f.Values = make([]string, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			f.Values = append(f.Values, r.Str())
		}
		f.Rows = parseRows(r, n)
	case FrameSnapChunk:
		f.Chunk = append([]byte(nil), r.Blob()...)
	case FrameSnapBegin, FrameHeartbeat, FrameAck:
		f.Seq = r.Uvarint()
	case FrameSnapEnd:
	}
	if err := r.Err(); err != nil {
		return f, err
	}
	if err := r.Done(); err != nil {
		return f, err
	}
	return f, nil
}

// SubscribeReq is a decoded OpSubscribe request: the follower's id (for
// watermark bookkeeping and /v1/repl), the global sequence number it
// wants the stream to start at, and whether it accepts a snapshot
// bootstrap when starting from zero against a non-empty primary.
type SubscribeReq struct {
	FollowerID string
	FromSeq    uint64
	Boot       bool
}

// EncodeSubscribe serializes a subscribe request payload.
func EncodeSubscribe(req SubscribeReq) []byte {
	boot := 0
	if req.Boot {
		boot = 1
	}
	return EncodeRequest(Request{Op: OpSubscribe, Value: req.FollowerID, Cursor: req.FromSeq, Max: boot})
}

// ParseSubscribe decodes a subscribe request payload (the same bytes
// ParseRequest accepts for OpSubscribe, as a typed struct). Arbitrary
// input must error, never panic — fuzzed alongside ParseRequest.
func ParseSubscribe(payload []byte) (SubscribeReq, error) {
	req, err := ParseRequest(payload)
	if err != nil {
		return SubscribeReq{}, err
	}
	if req.Op != OpSubscribe {
		return SubscribeReq{}, fmt.Errorf("server: opcode %d is not a subscribe", req.Op)
	}
	return SubscribeReq{FollowerID: req.Value, FromSeq: req.Cursor, Boot: req.Max == 1}, nil
}
